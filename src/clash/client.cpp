#include "clash/client.hpp"

#include <algorithm>
#include <cassert>
#include <set>

#include "common/bits.hpp"

namespace clash {

std::size_t RangeResolveOutcome::distinct_servers() const {
  std::set<ServerId> unique;
  for (const auto& [group, server] : segments) unique.insert(server);
  return unique.size();
}
namespace {

unsigned midpoint(unsigned low, unsigned high) {
  return low + (high - low + 1) / 2;
}

}  // namespace

ClashClient::ClashClient(const ClashConfig& cfg, ClientEnv& env,
                         dht::KeyHasher hasher)
    : ClashClient(cfg, env, hasher, Options(), 1) {}

ClashClient::ClashClient(const ClashConfig& cfg, ClientEnv& env,
                         dht::KeyHasher hasher, Options opts,
                         std::uint64_t seed)
    : cfg_(cfg),
      env_(env),
      hasher_(hasher),
      opts_(opts),
      depth_hint_(cfg.initial_depth),
      rng_state_(seed * 0x9e3779b97f4a7c15ULL + 0x7f4a7c15ULL) {}

std::optional<ClashClient::CacheEntry> ClashClient::cache_find(
    const Key& key) const {
  for (const auto& entry : cache_) {
    if (entry.group.contains(key)) return entry;
  }
  return std::nullopt;
}

void ClashClient::cache_store(const KeyGroup& group, ServerId server) {
  // Evict anything overlapping the new binding: after a split/merge the
  // shallower/deeper binding is stale and must not shadow this one.
  cache_.remove_if([&](const CacheEntry& e) {
    return e.group.covers(group) || group.covers(e.group);
  });
  cache_.push_front(CacheEntry{group, server});
  while (cache_.size() > opts_.cache_capacity) cache_.pop_back();
}

void ClashClient::invalidate(const Key& key) {
  cache_.remove_if(
      [&](const CacheEntry& e) { return e.group.contains(key); });
}

void ClashClient::clear_cache() { cache_.clear(); }

ResolveOutcome ClashClient::insert(AcceptObject obj) { return search(obj); }

ResolveOutcome ClashClient::resolve(const Key& key) {
  AcceptObject obj;
  obj.key = key;
  obj.probe_only = true;
  return search(obj);
}

RangeResolveOutcome ClashClient::resolve_range(const Key& lo, const Key& hi) {
  assert(lo.width() == cfg_.key_width && hi.width() == cfg_.key_width);
  assert(lo.value() <= hi.value());
  RangeResolveOutcome out;

  // Walk left to right: each resolution returns the active group
  // covering the cursor; skip to the first key past that group. Active
  // groups are prefix-free, so the walk partitions [lo, hi] exactly.
  std::uint64_t cursor = lo.value();
  // 2 * N * segments is far beyond any legal outcome; bound the walk so
  // a broken deployment cannot loop forever.
  const std::size_t max_segments = 64 * std::size_t(cfg_.key_width) + 64;
  while (out.segments.size() < max_segments) {
    const Key k(cursor, cfg_.key_width);
    const ResolveOutcome r = resolve(k);
    out.probes += r.probes;
    out.dht_hops += r.dht_hops;
    out.dht_lookups += r.dht_lookups;
    out.cache_hits += r.cache_hit ? 1 : 0;
    if (!r.ok) return out;  // out.ok stays false

    const KeyGroup group = KeyGroup::of(k, r.depth);
    out.segments.emplace_back(group, r.server);

    const unsigned free_bits = cfg_.key_width - group.depth();
    const std::uint64_t group_end =
        group.virtual_key().value() | bits::low_mask(free_bits);
    if (group_end >= hi.value()) break;
    cursor = group_end + 1;
  }
  out.ok = out.segments.size() < max_segments;
  return out;
}

RangeResolveOutcome ClashClient::resolve_scope(const KeyGroup& scope) {
  const unsigned free_bits = scope.key_width() - scope.depth();
  const Key lo = scope.virtual_key();
  const Key hi(scope.virtual_key().value() | bits::low_mask(free_bits),
               scope.key_width());
  return resolve_range(lo, hi);
}

ResolveOutcome ClashClient::search(AcceptObject& obj) {
  assert(obj.key.width() == cfg_.key_width);
  const unsigned n = cfg_.key_width;
  const unsigned max_probes =
      opts_.max_probes != 0 ? opts_.max_probes : 4 * n + 8;
  ResolveOutcome out;

  // Fast path: a cached binding covering this key ("the client simply
  // caches this server value and sends all subsequent packets with the
  // same key to this server", Section 6) — no DHT lookup at all.
  if (opts_.use_cache) {
    if (const auto hit = cache_find(obj.key)) {
      obj.depth = hit->group.depth();
      ++out.probes;
      const AcceptObjectReply reply =
          env_.rpc_accept_object(hit->server, obj);
      if (const auto* ok = std::get_if<AcceptObjectOk>(&reply)) {
        out.ok = true;
        out.server = hit->server;
        out.depth = ok->depth;
        out.cache_hit = true;
        depth_hint_ = ok->depth;
        if (ok->depth != hit->group.depth()) {
          cache_store(KeyGroup::of(obj.key, ok->depth), hit->server);
        }
        return out;
      }
      invalidate(obj.key);  // stale; fall into the full search
    }
  }

  unsigned low = 0;
  unsigned high = n;
  unsigned d = midpoint(low, high);
  switch (opts_.guess) {
    case Options::Guess::kHint:
      d = std::clamp(depth_hint_, low, high);
      break;
    case Options::Guess::kRandom:
      rng_state_ = rng_state_ * 6364136223846793005ULL + 1442695040888963407ULL;
      d = low + unsigned((rng_state_ >> 33) % (high - low + 1));
      break;
    case Options::Guess::kMidpoint:
      d = midpoint(low, high);
      break;
  }

  while (out.probes < max_probes) {
    const dht::LookupResult route =
        env_.dht_lookup(hasher_.hash_key(shape(obj.key, d)));
    ++out.dht_lookups;
    out.dht_hops += route.hops;

    obj.depth = d;
    ++out.probes;
    const AcceptObjectReply reply = env_.rpc_accept_object(route.owner, obj);

    if (const auto* ok = std::get_if<AcceptObjectOk>(&reply)) {
      out.ok = true;
      out.server = route.owner;
      out.depth = ok->depth;
      depth_hint_ = ok->depth;
      if (opts_.use_cache) {
        cache_store(KeyGroup::of(obj.key, ok->depth), route.owner);
      }
      return out;
    }

    const unsigned dmin = std::get<IncorrectDepth>(reply).dmin;
    // Section 5's update rules. The true depth d_c always satisfies
    // d_c >= dmin + 1; when dmin < d it additionally satisfies
    // d_c <= d - 1.
    if (dmin >= d) {
      low = std::max(low, dmin + 1);
    } else {
      low = std::max(low, dmin + 1);
      high = d - 1;  // d > dmin >= 0, so d >= 1
    }
    if (low > high || low > n) {
      // The tree changed under us (split/merge between probes); restart
      // the search over the full range.
      low = 0;
      high = n;
      ++out.restarts;
    }
    d = midpoint(low, high);
  }
  out.ok = false;
  return out;
}

}  // namespace clash
