#include "clash/server_table.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace clash {

void ServerTable::insert(const ServerTableEntry& entry) {
  if (entry.group.key_width() != key_width_) {
    throw std::invalid_argument("entry key width mismatch");
  }
  const auto [it, inserted] = entries_.emplace(entry.group, entry);
  (void)it;
  if (!inserted) {
    throw std::invalid_argument("duplicate key group in server table: " +
                                entry.group.label());
  }
}

void ServerTable::erase(const KeyGroup& group) { entries_.erase(group); }

ServerTableEntry* ServerTable::find(const KeyGroup& group) {
  const auto it = entries_.find(group);
  return it == entries_.end() ? nullptr : &it->second;
}

const ServerTableEntry* ServerTable::find(const KeyGroup& group) const {
  const auto it = entries_.find(group);
  return it == entries_.end() ? nullptr : &it->second;
}

ServerTableEntry* ServerTable::active_entry_for(const Key& k) {
  return const_cast<ServerTableEntry*>(
      static_cast<const ServerTable*>(this)->active_entry_for(k));
}

const ServerTableEntry* ServerTable::active_entry_for(const Key& k) const {
  // A server's table is small (lineage depth x managed groups), so a
  // linear scan is both simple and fast; prefix-freeness guarantees at
  // most one active match.
  for (const auto& [group, entry] : entries_) {
    if (entry.active && group.contains(k)) return &entry;
  }
  return nullptr;
}

unsigned ServerTable::longest_prefix_match(const Key& k) const {
  unsigned best = 0;
  for (const auto& [group, entry] : entries_) {
    const unsigned match = std::min(group.virtual_key().common_prefix_len(k),
                                    group.depth());
    best = std::max(best, match);
  }
  return best;
}

std::size_t ServerTable::active_count() const {
  return std::size_t(std::count_if(
      entries_.begin(), entries_.end(),
      [](const auto& kv) { return kv.second.active; }));
}

std::vector<const ServerTableEntry*> ServerTable::active_entries() const {
  std::vector<const ServerTableEntry*> out;
  for (const auto& [_, entry] : entries_) {
    if (entry.active) out.push_back(&entry);
  }
  return out;
}

std::vector<const ServerTableEntry*> ServerTable::all_entries() const {
  std::vector<const ServerTableEntry*> out;
  out.reserve(entries_.size());
  for (const auto& [_, entry] : entries_) out.push_back(&entry);
  return out;
}

std::optional<std::string> ServerTable::check_invariants() const {
  std::vector<const ServerTableEntry*> active;
  for (const auto& [group, entry] : entries_) {
    if (group.key_width() != key_width_) {
      return "entry " + group.label() + " has wrong key width";
    }
    if (shape(group.virtual_key(), group.depth()) != group.virtual_key()) {
      return "entry " + group.label() + " has non-zero suffix bits";
    }
    if (!entry.active && !entry.right_child.valid()) {
      return "inactive entry " + group.label() + " lacks a right child";
    }
    if (entry.active) active.push_back(&entry);
  }
  for (std::size_t i = 0; i < active.size(); ++i) {
    for (std::size_t j = i + 1; j < active.size(); ++j) {
      if (active[i]->group.covers(active[j]->group) ||
          active[j]->group.covers(active[i]->group)) {
        return "active groups overlap: " + active[i]->group.label() + " and " +
               active[j]->group.label();
      }
    }
  }
  return std::nullopt;
}

std::string ServerTable::to_string() const {
  std::ostringstream os;
  os << "No.  VirtualKeyGroup  Depth  Parent  RightChild  Active\n";
  std::size_t n = 1;
  for (const auto& [group, entry] : entries_) {
    os << n++ << "    " << group.label() << "  " << group.depth() << "  ";
    if (entry.root) {
      os << "-1";
    } else if (entry.parent.valid()) {
      os << clash::to_string(entry.parent);
    } else {
      os << "?";
    }
    os << "  ";
    os << (entry.right_child.valid() ? clash::to_string(entry.right_child)
                                     : std::string("-"));
    os << "  " << (entry.active ? "Y" : "N") << "\n";
  }
  return os.str();
}

}  // namespace clash
