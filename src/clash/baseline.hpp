// Baseline placement schemes CLASH is evaluated against.
//
// 1. Fixed-depth "basic DHT(x)" (the paper's comparator): identifier
//    keys truncated to a fixed depth x, no adaptation. Expressed as a
//    ClashConfig with splitting and consolidation disabled, so the same
//    server/client/simulator code paths measure it.
// 2. Power-of-d-choices ([5] in the paper, Byers et al. IPTPS'03):
//    each key group hashes to d candidate servers; objects go to the
//    least loaded candidate. Used by bench/abl_policies to show why
//    server-choice balancing cannot defuse a single hot group.
#pragma once

#include <vector>

#include "clash/config.hpp"
#include "dht/hash.hpp"
#include "keys/key.hpp"

namespace clash {

/// ClashConfig for the paper's DHT(x) baseline: all groups pinned at
/// depth x, thresholds pushed out of reach so no split/merge ever runs.
[[nodiscard]] ClashConfig fixed_depth_config(const ClashConfig& base,
                                             unsigned fixed_depth);

/// Candidate hash keys for power-of-d-choices placement.
class PowerOfDChoices {
 public:
  PowerOfDChoices(unsigned fixed_depth, unsigned d, unsigned hash_bits,
                  dht::KeyHasher::Algo algo, std::uint64_t salt_base);

  [[nodiscard]] unsigned fixed_depth() const { return fixed_depth_; }
  [[nodiscard]] unsigned choices() const {
    return unsigned(hashers_.size());
  }

  /// The d candidate positions for `key`'s fixed-depth group.
  [[nodiscard]] std::vector<dht::HashKey> candidates(const Key& key) const;

 private:
  unsigned fixed_depth_;
  std::vector<dht::KeyHasher> hashers_;
};

}  // namespace clash
