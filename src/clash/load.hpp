// Load model (Section 6): a key group's load is linear in the data rate
// it handles and logarithmic in the number of continuous queries it
// stores. A server's load is the sum over its active groups, compared
// to overload/underload thresholds each LOAD_CHECK_PERIOD.
#pragma once

#include <cstddef>

#include "clash/config.hpp"
#include "common/sim_time.hpp"

namespace clash {

/// Load units contributed by one key group.
[[nodiscard]] double group_load(const ClashConfig& cfg, double data_rate,
                                std::size_t query_count);

/// Exponentially-weighted moving average rate estimator for the
/// per-packet (non-simulated) deployment path. update() on each event;
/// rate() decays between events.
class RateEstimator {
 public:
  explicit RateEstimator(SimDuration half_life = SimTime::from_seconds(30));

  void record(SimTime now, double amount = 1.0);

  /// Estimated events/sec as of `now`.
  [[nodiscard]] double rate(SimTime now) const;

  void reset();

 private:
  double decay_per_usec_;
  double value_ = 0;  // smoothed events/sec
  SimTime last_{0};
  bool primed_ = false;
};

/// Tri-state verdict of a load check.
enum class LoadVerdict { kUnderloaded, kNormal, kOverloaded };

[[nodiscard]] LoadVerdict classify_load(const ClashConfig& cfg, double load);

}  // namespace clash
