// Tunables for the CLASH protocol. Defaults reproduce the paper's
// simulation parameters (Section 6.1).
#pragma once

#include <cstdint>

#include "common/sim_time.hpp"

namespace clash {

struct ClashConfig {
  /// Identifier key width N (paper: 24).
  unsigned key_width = 24;

  /// Depth of the bootstrap key groups ("starting depth" in Figure 4c;
  /// paper: 6). The 2^initial_depth root groups are distributed by the
  /// DHT at startup and consolidation never rises above them.
  unsigned initial_depth = 6;

  /// Server capacity in load units (1 unit == 1 data packet/sec; see
  /// LoadParams). DESIGN.md's calibration notes derive 2400.
  double capacity = 2400.0;

  /// Overload threshold as a fraction of capacity (paper: 90 %).
  double overload_frac = 0.90;

  /// Underload threshold as a fraction of capacity (paper: 54 %).
  double underload_frac = 0.54;

  /// A reclaimed (merged) group must fit under this fraction of
  /// capacity, so a merge can never immediately re-trigger a split.
  double merge_target_frac = 0.45;

  /// Load model: load = alpha * data_rate + beta * log2(1 + queries),
  /// per key group ("linear in the data rate, logarithmic in the number
  /// of queries", Section 6).
  double load_alpha = 1.0;
  double load_beta = 8.0;

  /// How often servers evaluate overload/underload
  /// (LOAD_CHECK_PERIOD; paper: 5 minutes).
  SimDuration load_check_period = SimTime::from_minutes(5);

  /// Splits performed per overloaded check. The paper sheds one group
  /// per detection; raising this trades transient spike height for
  /// split churn (see bench/abl_policies).
  unsigned max_splits_per_check = 1;

  /// Queries per STATE_TRANSFER message during migration.
  unsigned state_batch = 1;

  /// Split-selection policy (paper: hottest).
  enum class SplitPolicy : std::uint8_t { kHottest, kRandom, kMostKeys };
  SplitPolicy split_policy = SplitPolicy::kHottest;

  /// Merge-selection policy (paper: coldest).
  enum class MergePolicy : std::uint8_t { kColdest, kRandom };
  MergePolicy merge_policy = MergePolicy::kColdest;

  /// Enable bottom-up consolidation (ablation hook).
  bool enable_consolidation = true;

  /// Garbage-collect a group's table entry when its last object leaves.
  /// Used by the fixed-depth DHT(x) baselines, whose 2^x groups are
  /// materialised lazily (DHT(24) would otherwise need 16M entries).
  bool ephemeral_groups = false;

  /// Fault-tolerance extension (off = paper-faithful): each active key
  /// group is lease-replicated to this many ring successors every
  /// LOAD_CHECK_PERIOD; when a server fails, the DHT's new owner of the
  /// group promotes its replica. Staleness is bounded by one period.
  unsigned replication_factor = 0;

  /// How replicas track the owner (src/repl/):
  ///  - kSnapshot: the original lease scheme — a full state snapshot
  ///    every check period. Staleness up to one period; cost linear in
  ///    state size per period.
  ///  - kLog: per-group operation log. Every mutation is appended and
  ///    streamed to the replica set immediately; the periodic traffic
  ///    shrinks to an (epoch, seq) anti-entropy probe; failover and
  ///    rejoin pull exactly the missing suffix (snapshot only when the
  ///    suffix was compacted). Staleness ~ one message delay.
  enum class ReplicationMode : std::uint8_t { kSnapshot, kLog };
  ReplicationMode replication_mode = ReplicationMode::kSnapshot;

  /// Log mode: retained entries per group log before the owner cuts a
  /// fresh snapshot and compacts (bounds both memory and the size of a
  /// catch-up delta).
  unsigned log_compact_threshold = 256;

  /// Log mode: streams+queries per SnapshotChunk message.
  unsigned snapshot_chunk_objects = 128;

  // --- Durable storage subsystem (src/storage/) ------------------------
  /// What survives a process crash:
  ///  - kNone: the seed behaviour — a restarted node is empty and
  ///    pulls everything back over the network.
  ///  - kWal: every owned-group mutation is appended to a segmented,
  ///    CRC32-framed write-ahead log; one baseline snapshot per group
  ///    anchors replay. The log grows without bound (no truncation).
  ///  - kWalSnapshot: kWal plus periodic on-disk snapshots cut at log
  ///    compaction, with WAL truncation past the snapshot floor —
  ///    bounded disk and bounded replay.
  enum class DurabilityMode : std::uint8_t { kNone, kWal, kWalSnapshot };
  DurabilityMode durability_mode = DurabilityMode::kNone;

  /// When WAL appends reach stable storage:
  ///  - kPerAppend: fsync every record (no loss, highest latency).
  ///  - kInterval: group commit — fsync at most once per
  ///    fsync_interval (bounded loss window).
  ///  - kNever: leave it to the OS (a crash may lose any unsynced
  ///    suffix; recovery still truncates to the last complete record).
  enum class FsyncPolicy : std::uint8_t { kPerAppend, kInterval, kNever };
  FsyncPolicy fsync_policy = FsyncPolicy::kInterval;

  /// Group-commit window for FsyncPolicy::kInterval.
  SimDuration fsync_interval = SimTime::from_seconds(1);

  /// WAL segment rollover size (truncation reclaims whole segments).
  std::uint64_t wal_segment_bytes = 1u << 20;
};

}  // namespace clash
