// The ServerTable (Figure 2): each server's purely local view of the
// distributed binary splitting tree — the key groups it manages (active
// entries, the leaves) plus the lineage entries left behind by splits
// (inactive entries, which steer depth searches and enable
// consolidation).
#pragma once

#include <cstddef>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "keys/key.hpp"
#include "keys/key_group.hpp"

namespace clash {

struct ServerTableEntry {
  KeyGroup group;
  /// ParentID == -1 in the paper: consolidation never collapses above a
  /// root entry.
  bool root = false;
  /// Server holding the parent entry (== self for locally-split groups;
  /// meaningless when root).
  ServerId parent{};
  /// Server managing the right child after a split (invalid until this
  /// entry is split).
  ServerId right_child{};
  /// True when this entry is a leaf of the logical tree — i.e. this
  /// server actively manages the group's objects.
  bool active = true;
};

class ServerTable {
 public:
  explicit ServerTable(unsigned key_width) : key_width_(key_width) {}

  [[nodiscard]] unsigned key_width() const { return key_width_; }

  /// Inserts an entry; the group must not already be present.
  void insert(const ServerTableEntry& entry);

  void erase(const KeyGroup& group);

  [[nodiscard]] ServerTableEntry* find(const KeyGroup& group);
  [[nodiscard]] const ServerTableEntry* find(const KeyGroup& group) const;

  /// The unique ACTIVE entry whose group contains `k`, or nullptr.
  /// Uniqueness holds because active groups are prefix-free (checked by
  /// check_invariants()).
  [[nodiscard]] ServerTableEntry* active_entry_for(const Key& k);
  [[nodiscard]] const ServerTableEntry* active_entry_for(const Key& k) const;

  /// The longest prefix match between `k` and any entry (active or
  /// not): max over entries of min(common_prefix(k, vkey), depth).
  /// This is the dmin of an INCORRECT_DEPTH reply (Section 5 case c).
  [[nodiscard]] unsigned longest_prefix_match(const Key& k) const;

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] bool empty() const { return entries_.empty(); }
  [[nodiscard]] std::size_t active_count() const;

  [[nodiscard]] std::vector<const ServerTableEntry*> active_entries() const;
  [[nodiscard]] std::vector<const ServerTableEntry*> all_entries() const;

  /// Validates the local invariants:
  ///  1. active groups are mutually prefix-free,
  ///  2. every inactive entry has a valid right_child,
  ///  3. every entry's virtual key has a zeroed suffix and the table's
  ///     key width.
  /// Returns an explanation of the first violation, or nullopt.
  [[nodiscard]] std::optional<std::string> check_invariants() const;

  /// Render in the style of Figure 2 (for logs/examples).
  [[nodiscard]] std::string to_string() const;

 private:
  unsigned key_width_;
  std::map<KeyGroup, ServerTableEntry> entries_;
};

}  // namespace clash
