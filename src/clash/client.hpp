// ClashClient: the client side of the protocol (Section 5). Resolves
// the correct depth d_c for an identifier key via the paper's modified
// binary search over (0, N], caches resolved (group -> server) bindings
// per virtual stream, and inserts objects.
#pragma once

#include <cstdint>
#include <list>
#include <optional>
#include <utility>
#include <vector>

#include "clash/config.hpp"
#include "clash/messages.hpp"
#include "common/types.hpp"
#include "dht/dht.hpp"

namespace clash {

/// Runtime services a client needs. The implementation accounts for the
/// messages each call costs.
class ClientEnv {
 public:
  virtual ~ClientEnv() = default;

  /// Route `h` through the DHT from the client's access point.
  virtual dht::LookupResult dht_lookup(dht::HashKey h) = 0;

  /// Synchronous ACCEPT_OBJECT round trip.
  virtual AcceptObjectReply rpc_accept_object(ServerId to,
                                              const AcceptObject& msg) = 0;
};

/// Per-operation cost accounting (feeds Figure 5 and the depth-search
/// convergence benches).
struct ResolveOutcome {
  bool ok = false;
  ServerId server{};
  unsigned depth = 0;
  unsigned probes = 0;     // ACCEPT_OBJECT round trips
  unsigned dht_hops = 0;   // overlay hops spent on Map() lookups
  unsigned dht_lookups = 0;
  bool cache_hit = false;
  unsigned restarts = 0;   // stale-range restarts under churn
};

/// Result of a range resolution (Section 7 future work): the active key
/// groups covering a contiguous key range and the servers managing
/// them. Because CLASH clusters prefixes, a range usually spans few
/// segments — the basis of its lower query-replication overhead.
struct RangeResolveOutcome {
  bool ok = false;
  std::vector<std::pair<KeyGroup, ServerId>> segments;
  unsigned probes = 0;
  unsigned dht_hops = 0;
  unsigned dht_lookups = 0;
  unsigned cache_hits = 0;

  /// Distinct servers a range query/subscription must contact.
  [[nodiscard]] std::size_t distinct_servers() const;
};

class ClashClient {
 public:
  struct Options {
    /// First-probe policy. kHint starts from the last resolved depth
    /// (falling back to initial_depth); kMidpoint is a pure binary
    /// search; kRandom matches the paper's "picks at random".
    enum class Guess : std::uint8_t { kHint, kMidpoint, kRandom };
    Guess guess = Guess::kHint;
    /// Max cached (group -> server) bindings.
    std::size_t cache_capacity = 128;
    /// Give up after this many probes (churn storms); 0 = 4*N + 8.
    unsigned max_probes = 0;
    /// Use the cached binding for a key's group when present.
    bool use_cache = true;
  };

  ClashClient(const ClashConfig& cfg, ClientEnv& env, dht::KeyHasher hasher);
  ClashClient(const ClashConfig& cfg, ClientEnv& env, dht::KeyHasher hasher,
              Options opts, std::uint64_t seed = 1);

  /// Insert a data-stream registration / query / probe. `obj.depth` is
  /// ignored; the search fills it. On success the binding is cached.
  ResolveOutcome insert(AcceptObject obj);

  /// Resolve without storing (probe_only).
  ResolveOutcome resolve(const Key& key);

  /// Resolve every active group intersecting the inclusive key range
  /// [lo, hi] by walking successive group boundaries left to right.
  /// Supports the paper's range-query extension: a range subscription
  /// registers on each returned (group, server) segment.
  RangeResolveOutcome resolve_range(const Key& lo, const Key& hi);

  /// Convenience: resolve all groups inside a prefix scope.
  RangeResolveOutcome resolve_scope(const KeyGroup& scope);

  /// Drop any cached binding covering `key` (e.g. when the application
  /// learns the stream was redirected).
  void invalidate(const Key& key);
  void clear_cache();

  [[nodiscard]] std::size_t cache_size() const { return cache_.size(); }

 private:
  struct CacheEntry {
    KeyGroup group;
    ServerId server;
  };

  [[nodiscard]] std::optional<CacheEntry> cache_find(const Key& key) const;
  void cache_store(const KeyGroup& group, ServerId server);

  ResolveOutcome search(AcceptObject& obj);

  ClashConfig cfg_;
  ClientEnv& env_;
  dht::KeyHasher hasher_;
  Options opts_;
  // Small FIFO cache; clients track few concurrent streams.
  std::list<CacheEntry> cache_;
  unsigned depth_hint_;
  std::uint64_t rng_state_;
};

}  // namespace clash
