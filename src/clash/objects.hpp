// The stored-object descriptors shared by protocol messages, group
// state, and the replication log: stream registrations and continuous
// queries. Split out of messages.hpp so src/repl/ op types can carry
// them without pulling in the whole message set.
#pragma once

#include <cstdint>

#include "common/types.hpp"
#include "keys/key.hpp"

namespace clash {

/// What an ACCEPT_OBJECT carries: a data packet (transient, processed
/// and dropped) or a continuous query (stored state, migrated on split).
enum class ObjectKind : std::uint8_t { kData, kQuery };

/// A stored stream registration: the sim registers each source's
/// per-stream data rate with the server managing its group so loads are
/// exact without per-packet events.
struct StreamInfo {
  ClientId source;
  Key key{0, 24};
  double rate = 0;  // packets/sec
};

/// A stored continuous query.
struct QueryInfo {
  QueryId id;
  Key key{0, 24};
};

}  // namespace clash
