// The objects held by one key group: stream registrations and stored
// continuous queries. Split out of server.hpp so the replication log
// (src/repl/) can apply operations to group state without pulling in
// the whole server.
#pragma once

#include <map>

#include "clash/objects.hpp"
#include "common/types.hpp"

namespace clash {

/// Objects (stream registrations + stored queries) held by one group.
struct GroupState {
  std::map<ClientId, StreamInfo> streams;
  std::map<QueryId, QueryInfo> queries;
  double stream_rate = 0;  // invariant: sum of streams[*].rate

  [[nodiscard]] bool empty() const {
    return streams.empty() && queries.empty();
  }
};

}  // namespace clash
