#include "clash/server.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "common/logging.hpp"
#include "storage/store.hpp"
#include "wire/codec.hpp"

namespace clash {

ClashServer::ClashServer(ServerId self, const ClashConfig& cfg, ServerEnv& env,
                         dht::KeyHasher hasher)
    : self_(self),
      cfg_(cfg),
      env_(env),
      hasher_(hasher),
      table_(cfg.key_width),
      rng_(self.value * 0x9e3779b97f4a7c15ULL + 17),
      hub_(&env.obs()) {
  auto& reg = hub_->registry;
  commit_latency_us_ = reg.histogram("clash_repl_commit_usec");
  failover_us_ = reg.histogram("clash_failover_recovery_usec");
  snapshot_install_us_ = reg.histogram("clash_snapshot_install_usec");
  puts_total_ = reg.counter("clash_puts_total");
  repl_bytes_total_ = reg.counter("clash_repl_bytes_total");
  corrupt_rejected_total_ = reg.counter("clash_corrupt_rejected_total");
}

// Structural wire-size model for the cost vector: close enough to the
// encoded sizes for placement decisions, free on the hot path (no
// second encode).
namespace {

constexpr std::uint64_t kMsgOverheadBytes = 24;
constexpr std::uint64_t kPutWireBytes = 40;

std::uint64_t approx_op_bytes(const repl::LogOp& op) {
  return 24 + op.app_delta.size();
}

std::uint64_t approx_chunk_bytes(const SnapshotChunk& c) {
  std::uint64_t b = kMsgOverheadBytes + 24 * c.streams.size() +
                    16 * c.queries.size() + c.app_state.size();
  for (const auto& d : c.app_deltas) b += d.size();
  return b;
}

/// RAII for ClashServer::active_trace_: installs `id` (when nonzero)
/// for the duration of one message dispatch and restores the previous
/// value on exit, so nested dispatches under synchronous transports
/// keep their own correlation ids.
class TraceScope {
 public:
  TraceScope(std::uint64_t& slot, std::uint64_t id)
      : slot_(slot), saved_(slot) {
    if (id != 0) slot_ = id;
  }
  ~TraceScope() { slot_ = saved_; }
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  std::uint64_t& slot_;
  std::uint64_t saved_;
};

}  // namespace

void ClashServer::meter_matches(const Key& key, std::size_t n,
                                std::size_t bytes) {
  const ServerTableEntry* entry = table_.active_entry_for(key);
  if (entry == nullptr) return;
  GroupCost& cost = group_costs_[entry->group];
  cost.matches += n;
  cost.bytes_served += bytes;
  hub_->tracer.record(obs::SpanKind::kQueryMatch, self_.value, env_.now(),
                      SimDuration{0}, n, active_trace_);
}

void ClashServer::meter_repl_bytes(const KeyGroup& group,
                                   std::uint64_t bytes) {
  group_costs_[group].repl_bytes += bytes;
  repl_bytes_total_.inc(bytes);
}

void ClashServer::meter_storage_bytes(const KeyGroup& group,
                                      std::uint64_t bytes) {
  group_costs_[group].storage_bytes += bytes;
}

void ClashServer::fold_census(NodeCensusRecord& rec,
                              std::size_t top_k) const {
  rec.load = server_load();
  rec.active_groups = std::uint32_t(table_.active_count());
  rec.replica_records = std::uint32_t(replicas_.size());
  rec.queries = total_queries();
  rec.streams = total_streams();
  rec.totals = total_group_cost();
  rec.top_groups.clear();
  rec.top_groups.reserve(group_costs_.size());
  for (const auto& [group, cost] : group_costs_) {
    rec.top_groups.push_back(CensusGroupCost{group, cost});
  }
  // Deterministic top-K: heaviest first, ties by group identity so two
  // folds of the same state publish the same record.
  std::sort(rec.top_groups.begin(), rec.top_groups.end(),
            [](const CensusGroupCost& a, const CensusGroupCost& b) {
              if (a.cost.total_bytes() != b.cost.total_bytes()) {
                return a.cost.total_bytes() > b.cost.total_bytes();
              }
              return a.group < b.group;
            });
  if (rec.top_groups.size() > top_k) rec.top_groups.resize(top_k);
}

void ClashServer::install_entry(const ServerTableEntry& entry) {
  table_.insert(entry);
  if (entry.active) {
    state_.try_emplace(entry.group);
    note_group_activated(entry.group);
    if (cfg_.replication_factor > 0) replicate_group(entry);
    ensure_durable_group(entry);
  }
}

bool ClashServer::mark_group_root(const KeyGroup& group) {
  ServerTableEntry* entry = table_.find(group);
  if (entry == nullptr || !entry->active) return false;
  entry->root = true;
  return true;
}

// ---------------------------------------------------------------------------
// Client RPC: the three cases of Section 5.
// ---------------------------------------------------------------------------

AcceptObjectReply ClashServer::handle_accept_object(const AcceptObject& m) {
  const TraceScope trace(active_trace_, m.trace_id);
  ServerTableEntry* entry = table_.active_entry_for(m.key);
  if (entry == nullptr) {
    // Case (c): not responsible. Reply with the longest prefix match
    // across all entries so the client can narrow its depth search.
    return IncorrectDepth{table_.longest_prefix_match(m.key)};
  }
  // Cases (a) (right depth) and (b) (wrong depth, right server) differ
  // only in the echoed depth; the client compares.
  if (!m.probe_only) {
    hub_->tracer.record(obs::SpanKind::kIngest, self_.value, env_.now(),
                        SimDuration{0}, std::uint64_t(m.kind),
                        active_trace_);
    GroupState& gs = state_[entry->group];
    GroupCost& cost = group_costs_[entry->group];
    ++cost.puts;
    cost.bytes_served += kPutWireBytes;
    puts_total_.inc();
    if (m.kind == ObjectKind::kQuery) {
      gs.queries[m.query_id] = QueryInfo{m.query_id, m.key};
      log_op(entry->group,
             repl::LogOp::put_query(QueryInfo{m.query_id, m.key}));
    } else {
      auto [it, inserted] = gs.streams.try_emplace(m.source);
      if (!inserted) gs.stream_rate -= it->second.rate;
      it->second = StreamInfo{m.source, m.key, m.stream_rate};
      gs.stream_rate += m.stream_rate;
      log_op(entry->group,
             repl::LogOp::put_stream(StreamInfo{m.source, m.key,
                                                m.stream_rate}));
    }
  }
  return AcceptObjectOk{entry->group.depth()};
}

void ClashServer::remove_stream(ClientId source, const Key& key) {
  ServerTableEntry* entry = table_.active_entry_for(key);
  if (entry == nullptr) return;
  const auto st = state_.find(entry->group);
  if (st == state_.end()) return;
  const auto it = st->second.streams.find(source);
  if (it == st->second.streams.end()) return;
  st->second.stream_rate -= it->second.rate;
  if (st->second.stream_rate < 0) st->second.stream_rate = 0;  // fp dust
  st->second.streams.erase(it);
  log_op(entry->group, repl::LogOp::del_stream(source));
  maybe_gc_group(entry->group);
}

void ClashServer::remove_query(QueryId id, const Key& key) {
  ServerTableEntry* entry = table_.active_entry_for(key);
  if (entry == nullptr) return;
  const auto st = state_.find(entry->group);
  if (st == state_.end()) return;
  st->second.queries.erase(id);
  log_op(entry->group, repl::LogOp::del_query(id));
  maybe_gc_group(entry->group);
}

void ClashServer::maybe_gc_group(const KeyGroup& group_ref) {
  if (!cfg_.ephemeral_groups) return;
  // Callers pass a reference into the table entry that table_.erase is
  // about to free — copy first.
  const KeyGroup group = group_ref;
  const auto st = state_.find(group);
  if (st == state_.end() || !st->second.empty()) return;
  state_.erase(st);
  table_.erase(group);
  note_group_deactivated(group);
  retire_replicas(group);
}

// ---------------------------------------------------------------------------
// Peer message dispatch.
// ---------------------------------------------------------------------------

void ClashServer::deliver(ServerId from, const Message& msg) {
  std::visit(
      [&](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, AcceptKeyGroup>) {
          handle_accept_keygroup(from, m);
        } else if constexpr (std::is_same_v<T, LoadReport>) {
          handle_load_report(from, m);
        } else if constexpr (std::is_same_v<T, ReclaimKeyGroup>) {
          handle_reclaim(from, m);
        } else if constexpr (std::is_same_v<T, ReclaimAck>) {
          handle_reclaim_ack(from, m);
        } else if constexpr (std::is_same_v<T, ReclaimRefused>) {
          handle_reclaim_refused(from, m);
        } else if constexpr (std::is_same_v<T, ReplicateGroup>) {
          handle_replicate(from, m);
        } else if constexpr (std::is_same_v<T, DropReplica>) {
          handle_drop_replica(from, m);
        } else if constexpr (std::is_same_v<T, ReplAppend>) {
          handle_repl_append(from, m);
        } else if constexpr (std::is_same_v<T, ReplAck>) {
          handle_repl_ack(from, m);
        } else if constexpr (std::is_same_v<T, SnapshotOffer>) {
          handle_snapshot_offer(from, m);
        } else if constexpr (std::is_same_v<T, SnapshotChunk>) {
          handle_snapshot_chunk(from, m);
        } else if constexpr (std::is_same_v<T, AntiEntropyProbe>) {
          handle_ae_probe(from, m);
        } else if constexpr (std::is_same_v<T, AntiEntropyDiff>) {
          handle_ae_diff(from, m);
        } else if constexpr (std::is_same_v<T, AcceptKeyGroupAck>) {
          // Acknowledgement only; transfer already applied locally.
        } else {
          CLASH_WARN << to_string(self_)
                     << ": unexpected message variant from peer";
        }
      },
      msg);
}

void ClashServer::handle_accept_keygroup(ServerId from,
                                         const AcceptKeyGroup& m) {
  // Section 5: a node must accept every ACCEPT_KEYGROUP (it can always
  // split further itself if overloaded).
  ServerTableEntry entry;
  entry.group = m.group;
  entry.parent = m.parent;
  entry.root = m.root;  // handoffs preserve lineage; splits send false
  entry.active = true;
  table_.insert(entry);
  note_group_activated(m.group);

  GroupState& gs = state_[m.group];
  for (const auto& s : m.streams) {
    gs.streams[s.source] = s;
    gs.stream_rate += s.rate;
  }
  for (const auto& q : m.queries) gs.queries[q.id] = q;
  if (app_hooks_ != nullptr && !m.app_state.empty()) {
    app_hooks_->import_state(m.group, m.app_state);
  }
  // A transfer supersedes any in-flight recovery of the same group
  // (e.g. a handoff landing inside a promotion grace window).
  recovery_.cancel(m.group);
  end_recovery_op(m.group);

  // Replicate the freshly adopted group now rather than at the next
  // load check: a group must never live a whole check period with no
  // replica, or its owner's crash in that window would lose it (and,
  // in the deployed layer, leave its key range unroutable -- no
  // survivor would even know the group existed).
  if (log_replication() || durable()) init_group_log(m.group, m.epoch + 1);
  if (cfg_.replication_factor > 0) replicate_group(entry);

  env_.send(from, AcceptKeyGroupAck{m.group});
}

void ClashServer::handle_load_report(ServerId from, const LoadReport& m) {
  child_reports_[m.group] = ChildReport{m.load, m.is_leaf, env_.now()};
  // Self-healing child pointer: after a failover the group's new owner
  // reports here; update the lineage entry so consolidation can still
  // reach it.
  if (m.group.is_right_child()) {
    ServerTableEntry* parent_entry = table_.find(m.group.parent());
    if (parent_entry != nullptr && !parent_entry->active &&
        parent_entry->right_child.valid() &&
        parent_entry->right_child != from &&
        pending_reclaims_.count(m.group) == 0) {
      parent_entry->right_child = from;
    }
  }
}

void ClashServer::handle_reclaim(ServerId from, const ReclaimKeyGroup& m) {
  ServerTableEntry* entry = table_.find(m.group);
  // Refuse unless the group is still an active leaf we hold for this
  // parent (it may have been split further since the last report).
  if (entry == nullptr || !entry->active || entry->root ||
      entry->parent != from) {
    stats_.merge_refusals++;
    env_.send(from, ReclaimRefused{m.group});
    return;
  }
  GroupState st;
  const auto it = state_.find(m.group);
  if (it != state_.end()) {
    st = std::move(it->second);
    state_.erase(it);
  }
  table_.erase(m.group);
  child_reports_.erase(m.group);
  note_group_deactivated(m.group);
  retire_replicas(m.group);

  ReclaimAck ack;
  ack.group = m.group;
  ack.streams.reserve(st.streams.size());
  for (const auto& [_, s] : st.streams) ack.streams.push_back(s);
  ack.queries.reserve(st.queries.size());
  for (const auto& [_, q] : st.queries) ack.queries.push_back(q);
  if (app_hooks_ != nullptr) {
    ack.app_state = app_hooks_->export_state(m.group, from);
  }
  stats_.state_transfer_msgs += state_msgs_for(ack.queries.size());
  env_.send(from, std::move(ack));
}

void ClashServer::handle_reclaim_ack(ServerId from, const ReclaimAck& m) {
  pending_reclaims_.erase(m.group);
  child_reports_.erase(m.group);

  const KeyGroup parent_group = m.group.parent();
  ServerTableEntry* parent_entry = table_.find(parent_group);
  if (parent_entry == nullptr || parent_entry->active ||
      parent_entry->right_child != from) {
    // Should not happen with the pending-reclaim guard; drop the state
    // loudly rather than corrupt the table.
    CLASH_ERROR << to_string(self_) << ": stray ReclaimAck for "
                << m.group.label();
    return;
  }

  const KeyGroup left = parent_group.left_child();
  ServerTableEntry* left_entry = table_.find(left);
  assert(left_entry != nullptr && left_entry->active);

  GroupState merged;
  const auto left_state = state_.find(left);
  if (left_state != state_.end()) {
    merged = std::move(left_state->second);
    state_.erase(left_state);
  }
  for (const auto& s : m.streams) {
    merged.streams[s.source] = s;
    merged.stream_rate += s.rate;
  }
  for (const auto& q : m.queries) merged.queries[q.id] = q;
  if (app_hooks_ != nullptr && !m.app_state.empty()) {
    app_hooks_->import_state(parent_group, m.app_state);
  }

  table_.erase(left);
  (void)left_entry;
  note_group_deactivated(left);
  parent_entry->active = true;
  parent_entry->right_child = ServerId{};
  state_[parent_group] = std::move(merged);
  note_group_activated(parent_group);
  if (cfg_.replication_factor > 0) replicate_group(*parent_entry);
  ensure_durable_group(*parent_entry);
  // The merged parent's baseline is anchored; only now may the left
  // child's durable record be dropped (see split_group).
  retire_replicas(left);
  stats_.merges++;
}

void ClashServer::handle_reclaim_refused(ServerId /*from*/,
                                         const ReclaimRefused& m) {
  pending_reclaims_.erase(m.group);
  // Mark the report non-leaf so we stop trying until a fresh report.
  const auto it = child_reports_.find(m.group);
  if (it != child_reports_.end()) it->second.is_leaf = false;
}

// ---------------------------------------------------------------------------
// Splitting (Section 4/5).
// ---------------------------------------------------------------------------

bool ClashServer::force_split(const KeyGroup& group) {
  ServerTableEntry* entry = table_.find(group);
  if (entry == nullptr || !entry->active ||
      group.depth() >= cfg_.key_width) {
    return false;
  }
  split_group(group, /*reshed_on_self_map=*/false);
  return true;
}

void ClashServer::split_group(const KeyGroup& group,
                              bool reshed_on_self_map) {
  [[maybe_unused]] ServerTableEntry* entry = table_.find(group);
  assert(entry != nullptr && entry->active);
  assert(group.depth() < cfg_.key_width);

  GroupState st;
  const auto state_it = state_.find(group);
  if (state_it != state_.end()) {
    st = std::move(state_it->second);
    state_.erase(state_it);
  }

  KeyGroup current = group;
  // Replica/log retirement of the groups this split deactivates is
  // deferred to the end: the WAL drop record of a split-away group
  // must never hit the disk before every object it covered is
  // re-anchored (children baselines written, or the right half sent),
  // or a crash inside the split would lose state that only the old
  // snapshot still described.
  std::vector<KeyGroup> retired;
  for (;;) {
    const KeyGroup left = current.left_child();
    const KeyGroup right = current.right_child();

    // The left child expands to the same N-bit virtual key, so it maps
    // back to this server by construction; only the right child needs a
    // DHT lookup.
    const dht::LookupResult owner =
        env_.dht_lookup(hasher_.hash_key(right.virtual_key()));

    GroupState right_state = extract_subset(st, right);

    ServerTableEntry* cur_entry = table_.find(current);
    assert(cur_entry != nullptr);
    cur_entry->active = false;
    cur_entry->right_child = owner.owner;
    note_group_deactivated(current);

    ServerTableEntry left_entry;
    left_entry.group = left;
    left_entry.parent = self_;
    left_entry.active = true;
    table_.insert(left_entry);
    state_[left] = std::move(st);
    note_group_activated(left);
    // The left child is a final placement: replicate it immediately so
    // it never spends a check period unprotected (see
    // handle_accept_keygroup).
    if (cfg_.replication_factor > 0) replicate_group(left_entry);
    ensure_durable_group(left_entry);
    retired.push_back(current);

    if (owner.owner != self_ || right.depth() >= cfg_.key_width ||
        !reshed_on_self_map) {
      if (owner.owner == self_) {
        // Administrative split, or a maximal-depth right child that
        // still maps here: keep the right child local and active.
        ServerTableEntry right_entry;
        right_entry.group = right;
        right_entry.parent = self_;
        right_entry.active = true;
        cur_entry = table_.find(current);
        cur_entry->right_child = self_;
        table_.insert(right_entry);
        state_[right] = std::move(right_state);
        note_group_activated(right);
        if (cfg_.replication_factor > 0) replicate_group(right_entry);
        ensure_durable_group(right_entry);
        stats_.self_remaps++;
      } else {
        AcceptKeyGroup msg;
        msg.group = right;
        msg.parent = self_;
        msg.streams.reserve(right_state.streams.size());
        for (const auto& [_, s] : right_state.streams) {
          msg.streams.push_back(s);
        }
        msg.queries.reserve(right_state.queries.size());
        for (const auto& [_, q] : right_state.queries) {
          msg.queries.push_back(q);
        }
        if (app_hooks_ != nullptr) {
          msg.app_state = app_hooks_->export_state(right, owner.owner);
        }
        stats_.state_transfer_msgs += state_msgs_for(msg.queries.size());
        env_.send(owner.owner, std::move(msg));
      }
      stats_.splits++;
      for (const KeyGroup& g : retired) retire_replicas(g);
      return;
    }

    // Right child mapped back to us: make "another randomized attempt"
    // by increasing the depth of the right group again (Section 5).
    stats_.self_remaps++;
    ServerTableEntry right_entry;
    right_entry.group = right;
    right_entry.parent = self_;
    right_entry.active = true;  // immediately re-split below
    table_.insert(right_entry);
    note_group_activated(right);
    st = std::move(right_state);
    current = right;
  }
}

// ---------------------------------------------------------------------------
// Periodic load management.
// ---------------------------------------------------------------------------

void ClashServer::run_load_check() {
  // The replica lease must track the cadence this method actually runs
  // at: the deployment layer drives it on its own interval, which may
  // be far longer than ClashConfig::load_check_period — deriving the
  // lease from the config alone could expire perfectly live replicas
  // between two refreshes.
  const SimTime now = env_.now();
  if (last_load_check_.usec >= 0) {
    observed_check_gap_usec_ =
        std::max(observed_check_gap_usec_, (now - last_load_check_).usec);
  }
  last_load_check_ = now;
  if (durable()) {
    storage_->tick(now);  // group-commit fsync backstop
    // Re-anchor any group whose snapshot write failed (ENOSPC,
    // transient I/O): without the baseline, recovery would replay its
    // ops onto an empty image and call the partial result success.
    for (const ServerTableEntry* e : table_.active_entries()) {
      if (storage_->snapshot_retry_pending(e->group)) {
        persist_group_snapshot(*e, /*checkpoint=*/false);
      }
    }
  }
  send_load_reports();
  gc_stale_replicas();
  if (cfg_.replication_factor > 0) {
    // Log mode: the steady-state refresh shrinks from a full snapshot
    // per group to one (epoch, seq) vector per holder — divergence is
    // repaired by exactly the missing suffix.
    if (log_replication()) {
      send_anti_entropy();
    } else {
      send_replicas();
    }
  }
  // Resume any snapshot transfer that paused on transport
  // backpressure (the drain callback is the fast path; this is the
  // periodic backstop).
  pump_snapshots();
  const double load = server_load();
  switch (classify_load(cfg_, load)) {
    case LoadVerdict::kOverloaded:
      try_split_for_overload();
      break;
    case LoadVerdict::kUnderloaded:
      if (cfg_.enable_consolidation) try_consolidate();
      break;
    case LoadVerdict::kNormal:
      break;
  }
}

void ClashServer::send_load_reports() {
  for (const ServerTableEntry* e : table_.all_entries()) {
    if (e->root || !e->parent.valid() || e->parent == self_) continue;
    LoadReport r;
    r.group = e->group;
    r.is_leaf = e->active;
    r.load = e->active ? load_of(e->group) : 0.0;
    env_.send(e->parent, r);
  }
}

void ClashServer::try_split_for_overload() {
  for (unsigned i = 0; i < cfg_.max_splits_per_check; ++i) {
    if (classify_load(cfg_, server_load()) != LoadVerdict::kOverloaded) break;
    const auto candidate = pick_split_candidate();
    if (!candidate) break;  // nothing splittable (all at max depth)
    split_group(*candidate, /*reshed_on_self_map=*/true);
  }
}

std::optional<KeyGroup> ClashServer::pick_split_candidate() {
  std::vector<const ServerTableEntry*> eligible;
  for (const ServerTableEntry* e : table_.active_entries()) {
    if (e->group.depth() >= cfg_.key_width) continue;
    // Never split the local left child of a reclaim in flight: the
    // merge handler needs it to still be an active leaf.
    if (!e->group.is_root() &&
        pending_reclaims_.count(e->group.sibling()) > 0) {
      continue;
    }
    eligible.push_back(e);
  }
  if (eligible.empty()) return std::nullopt;

  switch (cfg_.split_policy) {
    case ClashConfig::SplitPolicy::kRandom:
      return eligible[rng_.below(eligible.size())]->group;
    case ClashConfig::SplitPolicy::kMostKeys: {
      const auto it = std::max_element(
          eligible.begin(), eligible.end(), [](const auto* a, const auto* b) {
            return a->group.cardinality() < b->group.cardinality();
          });
      return (*it)->group;
    }
    case ClashConfig::SplitPolicy::kHottest:
      break;
  }
  const auto it = std::max_element(
      eligible.begin(), eligible.end(), [this](const auto* a, const auto* b) {
        return load_of(a->group) < load_of(b->group);
      });
  // Splitting a zero-load group cannot shed anything.
  if (load_of((*it)->group) <= 0.0) return std::nullopt;
  return (*it)->group;
}

std::optional<KeyGroup> ClashServer::pick_merge_candidate() const {
  // Candidates: inactive local entries whose left child is a local
  // active non-root leaf and whose right child reported being a cold
  // leaf recently.
  const SimTime now = env_.now();
  const auto fresh_within =
      SimTime(cfg_.load_check_period.usec * 3);  // staleness bound

  std::optional<KeyGroup> best;
  double best_combined = 0;
  for (const ServerTableEntry* e : table_.all_entries()) {
    if (e->active || !e->right_child.valid()) continue;
    if (pending_reclaims_.count(e->group.right_child()) > 0) continue;

    const KeyGroup left = e->group.left_child();
    const ServerTableEntry* left_entry = table_.find(left);
    if (left_entry == nullptr || !left_entry->active || left_entry->root) {
      continue;
    }

    const KeyGroup right = e->group.right_child();
    double right_load = 0;
    if (e->right_child == self_) {
      const ServerTableEntry* right_entry = table_.find(right);
      if (right_entry == nullptr || !right_entry->active ||
          right_entry->root) {
        continue;
      }
      right_load = load_of(right);
    } else {
      const auto rep = child_reports_.find(right);
      if (rep == child_reports_.end() || !rep->second.is_leaf) continue;
      if (now - rep->second.at > fresh_within) continue;
      right_load = rep->second.load;
    }

    const double combined = load_of(left) + right_load;
    if (combined > cfg_.merge_target_frac * cfg_.capacity) continue;
    // Absorbing the right child must not push us over the overload
    // threshold.
    if (server_load() + right_load > cfg_.overload_frac * cfg_.capacity) {
      continue;
    }
    if (!best) {
      best = e->group;
      best_combined = combined;
    } else if (cfg_.merge_policy == ClashConfig::MergePolicy::kColdest &&
               combined < best_combined) {
      best = e->group;
      best_combined = combined;
    }
  }
  return best;
}

void ClashServer::try_consolidate() {
  const auto candidate = pick_merge_candidate();
  if (!candidate) return;
  const ServerTableEntry* entry = table_.find(*candidate);
  assert(entry != nullptr && !entry->active);
  const KeyGroup right = candidate->right_child();

  if (entry->right_child == self_) {
    // Both halves local: merge without messages.
    ServerTableEntry* right_entry = table_.find(right);
    assert(right_entry != nullptr && right_entry->active);
    (void)right_entry;
    GroupState right_state;
    const auto rs = state_.find(right);
    if (rs != state_.end()) {
      right_state = std::move(rs->second);
      state_.erase(rs);
    }
    table_.erase(right);
    note_group_deactivated(right);
    retire_replicas(right);

    ReclaimAck local_ack;
    local_ack.group = right;
    for (const auto& [_, s] : right_state.streams) {
      local_ack.streams.push_back(s);
    }
    for (const auto& [_, q] : right_state.queries) {
      local_ack.queries.push_back(q);
    }
    handle_reclaim_ack(self_, local_ack);
    return;
  }

  pending_reclaims_.insert(right);
  env_.send(entry->right_child, ReclaimKeyGroup{right});
}

// ---------------------------------------------------------------------------
// State partitioning and introspection.
// ---------------------------------------------------------------------------

// ---------------------------------------------------------------------------
// Fault tolerance: lease replication and failover promotion.
// ---------------------------------------------------------------------------

void ClashServer::send_replicas() {
  for (const ServerTableEntry* e : table_.active_entries()) {
    replicate_group(*e);
  }
}

void ClashServer::replicate_group(const ServerTableEntry& entry) {
  if (log_replication()) {
    // Log mode: a full snapshot (activation, compaction) instead of a
    // lease refresh; steady-state protection flows through log_op.
    snapshot_group(entry);
    return;
  }
  const auto targets = env_.replica_targets(
      hasher_.hash_key(entry.group.virtual_key()), cfg_.replication_factor);
  if (targets.empty()) return;
  ReplicateGroup msg;
  msg.group = entry.group;
  msg.owner = self_;
  msg.root = entry.root;
  msg.parent = entry.parent;
  const auto st = state_.find(entry.group);
  if (st != state_.end()) {
    msg.streams.reserve(st->second.streams.size());
    for (const auto& [_, s] : st->second.streams) msg.streams.push_back(s);
    msg.queries.reserve(st->second.queries.size());
    for (const auto& [_, q] : st->second.queries) msg.queries.push_back(q);
  }
  for (const ServerId target : targets) {
    if (target == self_) continue;
    env_.send(target, msg);
  }
}

void ClashServer::retire_replicas(const KeyGroup& group) {
  cancel_outbound_snapshots(group);  // the image being streamed is dead
  drop_group_log(group);
  // The group left this server (gc / split / merge / handoff): its cost
  // history goes with it, or the map — and its scrape-time gauges —
  // grow without bound under churn. The new owner meters from zero.
  group_costs_.erase(group);
  if (cfg_.replication_factor == 0) return;
  const auto targets = env_.replica_targets(
      hasher_.hash_key(group.virtual_key()), cfg_.replication_factor);
  for (const ServerId target : targets) {
    if (target == self_) continue;
    env_.send(target, DropReplica{group});
  }
}

void ClashServer::gc_stale_replicas() {
  const SimTime now = env_.now();
  const auto lease = SimTime(
      std::max(cfg_.load_check_period.usec, observed_check_gap_usec_) * 3);
  for (auto it = replicas_.begin(); it != replicas_.end();) {
    if (now - it->second.refreshed > lease) {
      // Replication-byte costs metered for a replica we no longer hold
      // go too — unless the group is also actively owned here.
      const ServerTableEntry* entry = table_.find(it->first);
      if (entry == nullptr || !entry->active) {
        group_costs_.erase(it->first);
      }
      it = replicas_.erase(it);
    } else {
      ++it;
    }
  }
}

void ClashServer::handle_replicate(ServerId /*from*/,
                                   const ReplicateGroup& m) {
  ReplicaRecord rec;
  rec.owner = m.owner;
  rec.root = m.root;
  rec.parent = m.parent;
  rec.refreshed = env_.now();
  for (const auto& s : m.streams) {
    rec.state.streams[s.source] = s;
    rec.state.stream_rate += s.rate;
  }
  for (const auto& q : m.queries) rec.state.queries[q.id] = q;
  replicas_[m.group] = std::move(rec);
}

void ClashServer::handle_drop_replica(ServerId /*from*/,
                                      const DropReplica& m) {
  replicas_.erase(m.group);
  const ServerTableEntry* entry = table_.find(m.group);
  if (entry == nullptr || !entry->active) group_costs_.erase(m.group);
}

// ---------------------------------------------------------------------------
// Replication & recovery subsystem (src/repl/): per-group operation
// log, snapshot + delta state transfer, anti-entropy repair.
// ---------------------------------------------------------------------------

std::vector<ServerId> ClashServer::replica_set(const KeyGroup& group) {
  return env_.replica_targets(hasher_.hash_key(group.virtual_key()),
                              cfg_.replication_factor);
}

// ---------------------------------------------------------------------------
// Durable storage subsystem (src/storage/): append-on-mutate WAL,
// baseline/checkpoint snapshots, crash-recovery restore.
// ---------------------------------------------------------------------------

bool ClashServer::durable() const {
  return storage_ != nullptr &&
         cfg_.durability_mode != ClashConfig::DurabilityMode::kNone;
}

void ClashServer::persist_group_snapshot(const ServerTableEntry& entry,
                                         bool checkpoint) {
  if (!durable()) return;
  storage::SnapshotImage img;
  img.group = entry.group;
  const auto lit = logs_.find(entry.group);
  img.head = lit != logs_.end() ? lit->second.head() : repl::LogHead{1, 0};
  img.root = entry.root;
  img.parent = entry.parent;
  const auto st = state_.find(entry.group);
  if (st != state_.end()) img.state = st->second;
  if (app_hooks_ != nullptr) {
    img.app_state = app_hooks_->snapshot_state(entry.group);
  }
  meter_storage_bytes(entry.group, storage_->write_snapshot(img, checkpoint));
}

void ClashServer::ensure_durable_group(const ServerTableEntry& entry) {
  if (!durable() || logs_.count(entry.group) > 0) return;
  // Creating the log writes the baseline snapshot; in log-replication
  // mode the replica push (snapshot_group) usually beat us here and
  // this is a no-op.
  init_group_log(entry.group, 1);
}

std::size_t ClashServer::restore_from_storage() {
  if (storage_ == nullptr) return 0;
  auto image = storage_->take_image();
  if (!durable()) return 0;
  for (auto& [group, g] : image.groups) {
    ReplicaRecord rec;
    rec.owner = self_;
    rec.root = g.root;
    rec.parent = g.parent;
    rec.state = std::move(g.state);
    rec.refreshed = env_.now();
    rec.log.reset(g.head.epoch, g.head.seq);
    rec.advertised = g.head;
    rec.app_snapshot = std::move(g.app_state);
    rec.app_tail = std::move(g.app_deltas);
    replicas_[group] = std::move(rec);
    // The group's next ownership line must rise above the recovered
    // one even if promotion happens before any peer is heard.
    auto [it, inserted] = retired_epochs_.try_emplace(group, g.head.epoch);
    if (!inserted && it->second < g.head.epoch) it->second = g.head.epoch;
  }
  return image.groups.size();
}

void ClashServer::adopt_bare_group(ServerTableEntry& entry) {
  // No replica anywhere: adopt the bare group so the key space stays
  // covered. Lineage above is unknown, so the entry becomes a root.
  entry.root = true;
  table_.insert(entry);
  state_.try_emplace(entry.group);
  note_group_activated(entry.group);
  stats_.failovers++;
  stats_.groups_lost++;
}

void ClashServer::init_group_log(const KeyGroup& group,
                                 std::uint64_t min_epoch) {
  // A queued batch must not outlive its epoch: send it under the old
  // line before the new one starts.
  flush_pending_append(group);
  std::uint64_t epoch = std::max<std::uint64_t>(min_epoch, 1);
  const auto it = retired_epochs_.find(group);
  if (it != retired_epochs_.end()) epoch = std::max(epoch, it->second + 1);
  logs_.insert_or_assign(group, repl::GroupLog(epoch, 0));
  flight(obs::FlightKind::kEpochBump, group_tag(group), epoch);
  // Heads registered under the old line can never be acked now.
  pending_commits_.erase(group);
  end_append_op(group);
  // A new line's baseline must hit the disk before any of its WAL
  // records: recovery anchors the replay on it (the state adopted
  // with the group — a split's share, a handoff, a promoted replica —
  // never went through log_op, so only the snapshot carries it).
  if (const ServerTableEntry* entry = table_.find(group);
      entry != nullptr && entry->active) {
    persist_group_snapshot(*entry, /*checkpoint=*/false);
  }
}

void ClashServer::drop_group_log(const KeyGroup& group) {
  flush_pending_append(group);
  pending_commits_.erase(group);
  end_append_op(group);
  const auto it = logs_.find(group);
  if (it == logs_.end()) return;
  retired_epochs_[group] = it->second.epoch();
  if (durable()) {
    storage_->drop_group(group, it->second.epoch(), env_.now());
  }
  logs_.erase(it);
}

void ClashServer::log_op(const KeyGroup& group, repl::LogOp op) {
  const bool replicating = log_replication();
  if (!replicating && !durable()) return;
  auto lit = logs_.find(group);
  if (lit == logs_.end()) {
    init_group_log(group, 1);
    lit = logs_.find(group);
  }
  repl::GroupLog& log = lit->second;

  if (replicating) {
    // One ReplAppend frame per group per dispatch tick: the transport
    // already coalesces writes, but encode/decode cost is per message,
    // so ops accumulate here and flush at the tick boundary. A
    // synchronous env runs the deferred flush inline — per-op
    // delivery, exactly the old behaviour.
    auto [pit, fresh] = pending_appends_.try_emplace(group);
    if (fresh) {
      pit->second.epoch = log.epoch();
      pit->second.base_seq = log.head().seq;
    }
    if (pit->second.trace_id == 0) pit->second.trace_id = active_trace_;
    pit->second.entries.push_back(op);
  }
  // Append-on-mutate, WAL first: the op is durable (per the fsync
  // policy) before the in-memory log observes it.
  const repl::LogHead head{log.epoch(), log.head().seq + 1};
  if (durable()) {
    meter_storage_bytes(group, storage_->append_op(group, head, op,
                                                   env_.now()));
  }
  log.append(std::move(op));
  if (replicating && !append_flush_scheduled_) {
    // Scheduled only after the local append: a synchronous env runs
    // the deferred flush inline, and the batch must never be sent
    // ahead of the owner's own log head.
    append_flush_scheduled_ = true;
    env_.defer([this] { flush_pending_appends(); });
  }

  // Bound the retained suffix: cut a fresh snapshot boundary once the
  // log outgrows the threshold (the snapshot resets every holder, and
  // on disk advances the WAL truncation floor).
  if (log.size() > cfg_.log_compact_threshold) {
    const ServerTableEntry* entry = table_.find(group);
    if (entry != nullptr && entry->active) {
      stats_.log_compactions++;
      if (replicating) {
        snapshot_group(*entry);
      } else {
        persist_group_snapshot(*entry, /*checkpoint=*/true);
        log.compact();
      }
    }
  }
}

void ClashServer::send_append_batch(const KeyGroup& group,
                                    PendingAppend&& batch) {
  ReplAppend msg;
  msg.group = group;
  msg.owner = self_;
  msg.epoch = batch.epoch;
  msg.base_seq = batch.base_seq;
  msg.trace_id = batch.trace_id;
  msg.entries = std::move(batch.entries);
  msg.checksum = wire::content_crc(msg);  // trace_id set first: covered
  const auto targets = replica_set(group);
  std::uint64_t wire = kMsgOverheadBytes;
  for (const auto& op : msg.entries) wire += approx_op_bytes(op);
  bool fanned_out = false;
  for (const ServerId target : targets) {
    if (target != self_) {
      fanned_out = true;
      meter_repl_bytes(group, wire);
    }
  }
  if (fanned_out) {
    // Register the in-flight head *before* sending: a synchronous env
    // delivers the holders' acks re-entrantly inside env_.send.
    auto& inflight = pending_commits_[group];
    if (inflight.empty() && hub_ != nullptr) {
      // Deque going empty -> non-empty opens the group's replication
      // op in the in-flight table; the last draining ack closes it.
      auto& tok = append_ops_[group];
      if (tok != 0) hub_->inflight.end(tok);
      std::uint64_t first_peer = 0;
      for (const ServerId target : targets) {
        if (target != self_) {
          first_peer = target.value;
          break;
        }
      }
      tok = hub_->inflight.begin(obs::OpKind::kReplAppend,
                                 std::uint32_t(self_.value), group.label(),
                                 first_peer, env_.now().usec);
    }
    inflight.push_back(PendingCommit{
        msg.epoch, msg.base_seq + msg.entries.size(), env_.now(),
        msg.trace_id});
    if (inflight.size() > 4096) inflight.pop_front();
  }
  for (const ServerId target : targets) {
    if (target != self_) env_.send(target, msg);
  }
}

void ClashServer::flush_pending_appends() {
  append_flush_scheduled_ = false;
  // Move the batches out first: sending can re-enter log paths.
  auto pending = std::exchange(pending_appends_, {});
  for (auto& [group, batch] : pending) {
    send_append_batch(group, std::move(batch));
  }
}

void ClashServer::flush_pending_append(const KeyGroup& group) {
  const auto it = pending_appends_.find(group);
  if (it == pending_appends_.end()) return;
  PendingAppend batch = std::move(it->second);
  pending_appends_.erase(it);
  send_append_batch(group, std::move(batch));
}

bool ClashServer::append_app_delta(const KeyGroup& group,
                                   std::vector<std::uint8_t> delta) {
  const ServerTableEntry* entry = table_.find(group);
  if (entry == nullptr || !entry->active) return false;
  log_op(group, repl::LogOp::app_delta_op(std::move(delta)));
  return true;
}

void ClashServer::snapshot_group(const ServerTableEntry& entry) {
  auto lit = logs_.find(entry.group);
  if (lit == logs_.end()) {
    init_group_log(entry.group, 1);
    lit = logs_.find(entry.group);
  }
  // The snapshot defines the new compaction boundary at the current
  // head; anyone behind it is repaired by the snapshot itself.
  lit->second.compact();
  persist_group_snapshot(entry, /*checkpoint=*/true);
  for (const ServerId target : replica_set(entry.group)) {
    if (target != self_) send_snapshot_to(target, entry);
  }
}

void ClashServer::send_snapshot_to(ServerId to,
                                   const ServerTableEntry& entry) {
  const auto lit = logs_.find(entry.group);
  const repl::LogHead head =
      lit != logs_.end() ? lit->second.head() : repl::LogHead{1, 0};
  static const GroupState kEmpty;
  const auto st = state_.find(entry.group);
  const GroupState& gs = st != state_.end() ? st->second : kEmpty;
  std::vector<std::uint8_t> app;
  if (app_hooks_ != nullptr) app = app_hooks_->snapshot_state(entry.group);
  send_state_snapshot(to, entry.group, gs, head, entry.root, entry.parent,
                      self_, app, {});
}

void ClashServer::send_state_snapshot(
    ServerId to, const KeyGroup& group, const GroupState& st,
    repl::LogHead head, bool root, ServerId parent, ServerId owner,
    const std::vector<std::uint8_t>& app_state,
    const std::vector<std::vector<std::uint8_t>>& app_deltas) {
  const std::size_t per_chunk = std::max(1u, cfg_.snapshot_chunk_objects);
  const std::size_t objects = st.streams.size() + st.queries.size();
  const auto total =
      std::uint32_t(std::max<std::size_t>(1, (objects + per_chunk - 1) /
                                                 per_chunk));
  // Every transfer gets a correlation id: the active trace when the
  // snapshot is a consequence of a traced op, a fresh one otherwise
  // (| 1 keeps it nonzero), so offer, chunks, and the receiver's
  // install span stitch into one flow.
  const std::uint64_t trace_id =
      active_trace_ != 0 ? active_trace_ : (rng_.next() | 1);
  SnapshotOffer offer;
  offer.group = group;
  offer.owner = owner;
  offer.head = head;
  offer.root = root;
  offer.parent = parent;
  offer.total_chunks = total;
  offer.trace_id = trace_id;
  meter_repl_bytes(group, kMsgOverheadBytes);
  hub_->tracer.record(obs::SpanKind::kSnapshotTransfer, self_.value,
                      env_.now(), SimDuration{0}, total, trace_id);
  flight(obs::FlightKind::kSnapshotOfferSent, group_tag(group), total);
  env_.send(to, offer);

  // Pre-cut the chunks into an outbound cursor instead of blasting
  // them all now: pump_snapshots drains the cursor as fast as the
  // destination's budget allows (unbounded in the sync sim; queue-depth
  // driven over TCP) and resumes when the transport drains. A restart
  // for the same (to, group) replaces any unfinished transfer.
  OutboundSnapshot out;
  out.chunks.reserve(total);
  auto stream_it = st.streams.begin();
  auto query_it = st.queries.begin();
  for (std::uint32_t idx = 0; idx < total; ++idx) {
    SnapshotChunk chunk;
    chunk.group = group;
    chunk.head = head;
    chunk.index = idx;
    chunk.total = total;
    chunk.trace_id = trace_id;  // before the CRC stamp below
    std::size_t in_chunk = 0;
    while (in_chunk < per_chunk && stream_it != st.streams.end()) {
      chunk.streams.push_back(stream_it->second);
      ++stream_it;
      ++in_chunk;
    }
    while (in_chunk < per_chunk && query_it != st.queries.end()) {
      chunk.queries.push_back(query_it->second);
      ++query_it;
      ++in_chunk;
    }
    if (idx == 0) {  // app payload rides whole on the first chunk
      chunk.app_state = app_state;
      chunk.app_deltas = app_deltas;
    }
    chunk.checksum = wire::content_crc(chunk);
    out.chunks.push_back(std::move(chunk));
  }
  if (hub_ != nullptr) {
    // A restart for the same (to, group) replaces the cursor below:
    // retire the superseded transfer's in-flight entry first.
    if (const auto oit = outbound_snapshots_.find({to, group});
        oit != outbound_snapshots_.end()) {
      end_outbound_op(oit->second);
    }
    out.inflight_token = hub_->inflight.begin(
        obs::OpKind::kSnapshotOut, std::uint32_t(self_.value),
        group.label(), to.value, env_.now().usec, total);
  }
  outbound_snapshots_[{to, group}] = std::move(out);
  pump_snapshots();
}

std::size_t ClashServer::pump_snapshots() {
  // A chunk delivery can nack synchronously and restart the very
  // transfer being pumped (the map entry is replaced or erased under
  // the loop), so: no held iterators across sends, and no nested
  // pumps — the outermost loop re-finds each entry per chunk and
  // naturally picks up a restarted cursor.
  if (pumping_snapshots_) return outbound_snapshots_.size();
  pumping_snapshots_ = true;
  bool progress = true;
  while (progress) {
    progress = false;
    std::vector<std::pair<ServerId, KeyGroup>> keys;
    keys.reserve(outbound_snapshots_.size());
    for (const auto& [key, _] : outbound_snapshots_) keys.push_back(key);
    for (const auto& key : keys) {
      std::size_t budget = env_.snapshot_chunk_budget(key.first);
      for (;;) {
        const auto it = outbound_snapshots_.find(key);
        if (it == outbound_snapshots_.end()) break;  // cancelled mid-pump
        OutboundSnapshot& out = it->second;
        if (out.next >= out.chunks.size()) {
          end_outbound_op(out);
          outbound_snapshots_.erase(it);
          break;
        }
        if (budget == 0) break;
        --budget;
        progress = true;
        meter_repl_bytes(key.second,
                         approx_chunk_bytes(out.chunks[out.next]));
        Message msg(std::move(out.chunks[out.next]));
        ++out.next;
        // Copy the token out: the send may re-enter and replace or
        // erase this very map entry (stale tokens are ignored).
        const std::uint64_t tok = out.inflight_token;
        env_.send(key.first, msg);
        if (hub_ != nullptr && tok != 0) {
          hub_->inflight.progress(tok, env_.now().usec);
        }
      }
    }
    if (outbound_snapshots_.empty()) break;
  }
  pumping_snapshots_ = false;
  return outbound_snapshots_.size();
}

void ClashServer::cancel_outbound_snapshot(ServerId to,
                                           const KeyGroup& group) {
  const auto it = outbound_snapshots_.find({to, group});
  if (it == outbound_snapshots_.end()) return;
  flight(obs::FlightKind::kSnapshotAborted, group_tag(group), to.value);
  end_outbound_op(it->second);
  outbound_snapshots_.erase(it);
}

void ClashServer::cancel_outbound_snapshots(const KeyGroup& group) {
  for (auto it = outbound_snapshots_.begin();
       it != outbound_snapshots_.end();) {
    if (it->first.second == group) {
      flight(obs::FlightKind::kSnapshotAborted, group_tag(group),
             it->first.first.value);
      end_outbound_op(it->second);
      it = outbound_snapshots_.erase(it);
    } else {
      ++it;
    }
  }
}

void ClashServer::send_anti_entropy() {
  std::map<ServerId, std::vector<GroupHead>> per_holder;
  for (const ServerTableEntry* e : table_.active_entries()) {
    const auto lit = logs_.find(e->group);
    if (lit == logs_.end()) {
      replicate_group(*e);  // missing log: heal with a fresh snapshot
      continue;
    }
    const auto head = lit->second.head();
    for (const ServerId target : replica_set(e->group)) {
      if (target != self_) {
        per_holder[target].push_back(GroupHead{e->group, head});
      }
    }
  }
  for (auto& [holder, heads] : per_holder) {
    env_.send(holder, AntiEntropyProbe{self_, std::move(heads)});
  }
}

void ClashServer::handle_repl_append(ServerId from, const ReplAppend& m) {
  const TraceScope trace(active_trace_, m.trace_id);
  // Corruption fences, before any state is touched. The content CRC
  // catches in-flight byte flips that survive the codec's structural
  // checks; the seq overflow guard catches a base_seq flipped into
  // wrap-around territory. Rejected appends are simply dropped — no
  // nack, because a nack would trigger repair off a forged head; the
  // sender's anti-entropy probe re-syncs us on the next period.
  if ((m.checksum != 0 && m.checksum != wire::content_crc(m)) ||
      m.base_seq + m.entries.size() < m.base_seq) {
    stats_.corrupt_rejected++;
    corrupt_rejected_total_.inc();
    flight(obs::FlightKind::kCorruptReject, group_tag(m.group));
    return;
  }
  // Never apply replica traffic to a group this server actively owns
  // (a stale owner racing a promotion).
  if (const auto* entry = table_.find(m.group);
      entry != nullptr && entry->active) {
    return;
  }
  const auto it = replicas_.find(m.group);
  if (it == replicas_.end()) {
    // No base to apply deltas onto: nack so the sender repairs us.
    env_.send(from, ReplAck{m.group, repl::LogHead{}, false});
    return;
  }
  ReplicaRecord& rec = it->second;
  rec.refreshed = env_.now();
  const repl::LogHead tip{m.epoch, m.base_seq + m.entries.size()};
  if (rec.advertised < tip) rec.advertised = tip;
  if (m.owner.valid()) rec.owner = m.owner;

  const repl::LogHead head = rec.log.head();
  if (m.epoch != head.epoch || m.base_seq > head.seq) {
    if (rec.pending) {
      // A snapshot assembly is already in flight for this group: it
      // will re-anchor us past this gap, so stay quiet. Nacking here
      // would make the sender cancel and restart that very transfer —
      // under paced TCP streaming, every routine append during a long
      // transfer would reset it and it could never complete.
      return;
    }
    // Epoch change or a gap: nack with our real head; the sender
    // diffs us forward (suffix or snapshot).
    env_.send(from, ReplAck{m.group, head, false});
    return;
  }
  // Skip the overlap (idempotent re-delivery), apply the rest.
  const std::size_t skip = std::size_t(head.seq - m.base_seq);
  for (std::size_t i = skip; i < m.entries.size(); ++i) {
    const repl::LogOp& op = m.entries[i];
    repl::GroupLog::apply(op, rec.state);
    if (op.kind == repl::OpKind::kAppDelta) {
      rec.app_tail.push_back(op.app_delta);
    }
    rec.log.append(op);
  }
  const std::size_t applied =
      m.entries.size() > skip ? m.entries.size() - skip : 0;
  if (applied > 0) {
    hub_->tracer.record(obs::SpanKind::kReplApply, self_.value, env_.now(),
                        SimDuration{0}, applied, active_trace_);
    if (recovery_.active(m.group)) {
      recovery_.note_entries_repaired(m.group, applied);
      progress_recovery_op(m.group, applied);
    }
  }
  env_.send(from, ReplAck{m.group, rec.log.head(), true});
}

void ClashServer::handle_repl_ack(ServerId from, const ReplAck& m) {
  // Positive acks confirm progress and need no bookkeeping; a nack
  // asks for repair, served from the owner log or, on a non-owner
  // (peer recovery), from the replica record. The nack also aborts any
  // snapshot still streaming to that peer for the group — the receiver
  // tore down its assembly, so the unsent chunks would only be nacked
  // again; repair restarts the transfer from scratch instead.
  if (m.ok) {
    // First positive ack at or past an in-flight batch head commits
    // it: record ReplAppend -> ReplAck latency (later acks for the
    // same head find the deque already drained).
    const auto it = pending_commits_.find(m.group);
    if (it != pending_commits_.end()) {
      auto& inflight = it->second;
      const SimTime now = env_.now();
      while (!inflight.empty() && inflight.front().epoch == m.head.epoch &&
             inflight.front().seq <= m.head.seq) {
        const SimDuration latency = now - inflight.front().sent;
        commit_latency_us_.record_signed(latency.usec);
        hub_->tracer.record(obs::SpanKind::kCommit, self_.value,
                            inflight.front().sent, latency,
                            inflight.front().seq,
                            inflight.front().trace_id);
        inflight.pop_front();
      }
      if (inflight.empty()) {
        pending_commits_.erase(it);
        end_append_op(m.group);
      } else if (hub_ != nullptr) {
        const auto at = append_ops_.find(m.group);
        if (at != append_ops_.end()) {
          hub_->inflight.progress(at->second, now.usec);
        }
      }
    }
    return;
  }
  cancel_outbound_snapshot(from, m.group);
  repair_peer(from, m.group, m.head);
}

void ClashServer::handle_snapshot_offer(ServerId from,
                                        const SnapshotOffer& m) {
  // Sanity fence: no legitimate snapshot approaches a million chunks
  // (the pacer would never finish one); a count that large is a
  // corrupted or hostile offer and would wedge the assembly forever
  // waiting for chunks that do not exist.
  constexpr std::uint32_t kMaxSaneChunks = 1u << 20;
  if (m.total_chunks == 0 || m.total_chunks > kMaxSaneChunks) {
    stats_.corrupt_rejected++;
    corrupt_rejected_total_.inc();
    flight(obs::FlightKind::kCorruptReject, group_tag(m.group));
    return;
  }
  if (const auto* entry = table_.find(m.group);
      entry != nullptr && entry->active) {
    return;
  }
  ReplicaRecord& rec = replicas_[m.group];
  rec.refreshed = env_.now();
  if (rec.pending && !(rec.pending->head < m.head)) {
    // A transfer is mid-flight and this offer is not strictly fresher:
    // a duplicate or competing offer for the same head must not
    // discard the chunks already assembled — overwriting the record
    // here desyncs the chunk cursor and loses the whole transfer.
    // Only a strictly newer head (a snapshot superseding the one in
    // flight) preempts the assembly.
    stats_.snapshot_offers_ignored++;
    return;
  }
  flight(obs::FlightKind::kSnapshotOfferRecv, group_tag(m.group),
         m.total_chunks);
  if (rec.pending && hub_ != nullptr) {
    // A strictly fresher offer preempts the assembly in flight; its
    // in-flight entry must not outlive the record it tracked.
    hub_->inflight.end(rec.pending->inflight_token);
  }
  ReplicaRecord::PendingSnapshot pending;
  pending.head = m.head;
  pending.owner = m.owner;
  pending.root = m.root;
  pending.parent = m.parent;
  pending.total = m.total_chunks;
  pending.started = env_.now();
  pending.trace_id = m.trace_id;
  if (hub_ != nullptr) {
    pending.inflight_token = hub_->inflight.begin(
        obs::OpKind::kSnapshotIn, std::uint32_t(self_.value),
        m.group.label(), from.value, env_.now().usec, m.total_chunks);
  }
  rec.pending = std::move(pending);
  rec.last_nacked = repl::LogHead{};  // the new stream starts clean
}

void ClashServer::handle_snapshot_chunk(ServerId from,
                                        const SnapshotChunk& m) {
  // Corruption fence first: installing a flipped stream rate or query
  // id into a pending assembly would poison the replica at promotion.
  // Dropping the chunk desyncs the stream, and the *next* chunk's
  // index mismatch nacks the transfer into a clean restart.
  if (m.checksum != 0 && m.checksum != wire::content_crc(m)) {
    stats_.corrupt_rejected++;
    corrupt_rejected_total_.inc();
    flight(obs::FlightKind::kCorruptReject, group_tag(m.group));
    return;
  }
  if (const auto* entry = table_.find(m.group);
      entry != nullptr && entry->active) {
    return;
  }
  const auto it = replicas_.find(m.group);
  if (it == replicas_.end()) return;  // offer was never seen
  ReplicaRecord& rec = it->second;
  rec.refreshed = env_.now();
  if (!rec.pending && rec.last_nacked == m.head) {
    return;  // remnants of a transfer already nacked: stay silent
  }
  if (rec.pending && rec.pending->head == m.head &&
      m.total == rec.pending->total && m.index < rec.pending->received) {
    return;  // duplicated frame of an already-applied chunk: idempotent
  }
  if (!rec.pending || rec.pending->head != m.head ||
      m.index != rec.pending->received || m.total != rec.pending->total) {
    // Stream out of sync (lost, reordered, or never-offered chunk):
    // tear the assembly down and nack with our real head so the sender
    // restarts NOW — staying silent would leave it streaming a dead
    // transfer while recovery waits out a full anti-entropy period.
    if (rec.pending) {
      flight(obs::FlightKind::kSnapshotAborted, group_tag(m.group),
             from.value);
      if (hub_ != nullptr) hub_->inflight.end(rec.pending->inflight_token);
    }
    rec.pending.reset();
    rec.last_nacked = m.head;
    stats_.snapshot_aborts++;
    env_.send(from, ReplAck{m.group, rec.log.head(), false});
    return;
  }
  ReplicaRecord::PendingSnapshot& p = *rec.pending;
  for (const auto& s : m.streams) {
    // A re-delivered stream replaces its map entry; its rate must not
    // accumulate twice (subtract what the overwritten entry carried).
    auto [sit, inserted] = p.state.streams.try_emplace(s.source, s);
    if (!inserted) {
      p.state.stream_rate -= sit->second.rate;
      sit->second = s;
    }
    p.state.stream_rate += s.rate;
  }
  for (const auto& q : m.queries) p.state.queries[q.id] = q;
  p.app_state.insert(p.app_state.end(), m.app_state.begin(),
                     m.app_state.end());
  for (const auto& d : m.app_deltas) p.app_deltas.push_back(d);
  ++p.received;
  if (hub_ != nullptr) {
    hub_->inflight.progress(p.inflight_token, env_.now().usec);
  }
  if (p.received < p.total) return;

  // Complete: install the image and re-anchor the retained log.
  rec.owner = p.owner;
  rec.root = p.root;
  rec.parent = p.parent;
  rec.state = std::move(p.state);
  rec.app_snapshot = std::move(p.app_state);
  rec.app_tail = std::move(p.app_deltas);
  rec.log.reset(m.head.epoch, m.head.seq);
  if (rec.advertised < m.head) rec.advertised = m.head;
  snapshot_install_us_.record_signed((env_.now() - p.started).usec);
  hub_->tracer.record(obs::SpanKind::kSnapshotTransfer, self_.value,
                      p.started, env_.now() - p.started, p.total,
                      p.trace_id);
  flight(obs::FlightKind::kSnapshotInstalled, group_tag(m.group), p.total);
  if (hub_ != nullptr) hub_->inflight.end(p.inflight_token);
  rec.pending.reset();
  if (recovery_.active(m.group)) {
    recovery_.note_snapshot_pulled(m.group);
    progress_recovery_op(m.group, 1);
  }
  env_.send(from, ReplAck{m.group, rec.log.head(), true});
}

void ClashServer::handle_ae_probe(ServerId from, const AntiEntropyProbe& m) {
  AntiEntropyDiff diff;
  for (const GroupHead& gh : m.heads) {
    if (const auto* entry = table_.find(gh.group);
        entry != nullptr && entry->active) {
      continue;  // both sides claim ownership; promotion sorts it out
    }
    const auto it = replicas_.find(gh.group);
    if (it == replicas_.end()) {
      diff.behind.push_back(GroupHead{gh.group, repl::LogHead{}});
      continue;
    }
    ReplicaRecord& rec = it->second;
    rec.refreshed = env_.now();
    if (rec.advertised < gh.head) rec.advertised = gh.head;
    if (m.owner.valid()) rec.owner = m.owner;
    const auto head = rec.log.head();
    if (head == gh.head) continue;
    if (head.epoch == gh.head.epoch && head < gh.head) {
      diff.behind.push_back(GroupHead{gh.group, head});
    } else {
      // Epoch drift in either direction: our copy belongs to a dead
      // ownership line — the probing owner is the authority, resync
      // from scratch.
      diff.behind.push_back(GroupHead{gh.group, repl::LogHead{}});
    }
  }
  if (!diff.behind.empty()) env_.send(from, diff);
}

void ClashServer::handle_ae_diff(ServerId from, const AntiEntropyDiff& m) {
  for (const GroupHead& gh : m.behind) repair_peer(from, gh.group, gh.head);
}

void ClashServer::repair_peer(ServerId to, const KeyGroup& group,
                              repl::LogHead have) {
  // Active-owner path: repair from the authoritative log.
  const ServerTableEntry* entry = table_.find(group);
  if (entry != nullptr && entry->active) {
    const auto lit = logs_.find(group);
    if (lit == logs_.end()) return;  // snapshot mode: nothing to diff
    repl::GroupLog& log = lit->second;
    std::vector<repl::LogOp> out;
    if (have.epoch == log.epoch() && log.suffix_from(have.seq, out)) {
      if (!out.empty()) {
        std::uint64_t wire = kMsgOverheadBytes;
        for (const auto& op : out) wire += approx_op_bytes(op);
        meter_repl_bytes(group, wire);
        ReplAppend repair{group, self_, log.epoch(), have.seq,
                          active_trace_, std::move(out)};
        repair.checksum = wire::content_crc(repair);
        env_.send(to, repair);
      }
    } else {
      send_snapshot_to(to, *entry);
    }
    return;
  }
  // Peer path (owner dead, a promoting heir is pulling): repair from
  // our replica when it is strictly fresher than the requester.
  const auto rit = replicas_.find(group);
  if (rit == replicas_.end()) return;
  ReplicaRecord& rec = rit->second;
  const auto head = rec.log.head();
  if (!(have < head)) return;
  std::vector<repl::LogOp> out;
  if (have.epoch == head.epoch && rec.log.suffix_from(have.seq, out)) {
    if (!out.empty()) {
      ReplAppend repair{group, rec.owner, head.epoch, have.seq,
                        active_trace_, std::move(out)};
      repair.checksum = wire::content_crc(repair);
      env_.send(to, repair);
    }
    return;
  }
  // The requester predates our retained suffix: ship a peer-built
  // snapshot — object state at our head, app snapshot + delta tail.
  send_state_snapshot(to, group, rec.state, head, rec.root, rec.parent,
                      rec.owner, rec.app_snapshot, rec.app_tail);
}

void ClashServer::begin_group_recovery(const KeyGroup& group) {
  if (!log_replication()) return;
  if (const auto* entry = table_.find(group);
      entry != nullptr && entry->active) {
    return;
  }
  const auto it = replicas_.find(group);
  const repl::LogHead start =
      it != replicas_.end() ? it->second.log.head() : repl::LogHead{};
  if (!recovery_.begin(group, start)) return;  // probes already out
  recovery_started_.try_emplace(group, env_.now());
  flight(obs::FlightKind::kRecoveryBegin, group_tag(group));
  if (hub_ != nullptr) {
    auto& tok = recovery_ops_[group];
    if (tok != 0) hub_->inflight.end(tok);
    tok = hub_->inflight.begin(obs::OpKind::kRecoveryPull,
                               std::uint32_t(self_.value), group.label(),
                               0, env_.now().usec);
  }
  const AntiEntropyDiff pull{{GroupHead{group, start}}};
  for (const ServerId peer : replica_set(group)) {
    if (peer != self_) env_.send(peer, pull);
  }
}

bool ClashServer::promote_with_recovery(const KeyGroup& group) {
  // Pull the freshest suffix from the surviving holders before
  // installing anything: a replica that lags the highest advertised
  // head is repaired (or superseded by a fresher peer), never silently
  // promoted. Synchronous transports complete the repair inside
  // begin_group_recovery; the TCP layer opened the session during its
  // recovery-grace window.
  begin_group_recovery(group);

  const auto it = replicas_.find(group);
  const bool recovered = it != replicas_.end();

  ServerTableEntry entry;
  entry.group = group;
  entry.active = true;
  repl::LogHead head;
  repl::LogHead advertised;
  if (recovered) {
    ReplicaRecord& rec = it->second;
    head = rec.log.head();
    advertised = rec.advertised;
    entry.root = rec.root;
    entry.parent = rec.parent;
    table_.insert(entry);
    state_[group] = std::move(rec.state);
    if (app_hooks_ != nullptr) {
      if (!rec.app_snapshot.empty()) {
        app_hooks_->import_state(group, rec.app_snapshot);
      }
      for (const auto& d : rec.app_tail) app_hooks_->apply_delta(group, d);
    }
    replicas_.erase(it);
    note_group_activated(group);
    stats_.failovers++;
  } else {
    adopt_bare_group(entry);
  }
  recovery_.finish(group, head, advertised);
  flight(obs::FlightKind::kRecoveryFinish, group_tag(group),
         recovered ? 1 : 0);
  flight(obs::FlightKind::kReplicaPromoted, group_tag(group),
         recovered ? 1 : 0);
  end_recovery_op(group);
  if (const auto rs = recovery_started_.find(group);
      rs != recovery_started_.end()) {
    const SimDuration took = env_.now() - rs->second;
    failover_us_.record_signed(took.usec);
    hub_->tracer.record(obs::SpanKind::kFailover, self_.value, rs->second,
                        took, recovered ? 1 : 0);
    recovery_started_.erase(rs);
  }
  // New ownership line: the epoch rises above anything ever advertised
  // and the (new) replica set gets an immediate snapshot, so a second
  // failure in this period still finds fresh holders.
  init_group_log(group, std::max(head.epoch, advertised.epoch) + 1);
  replicate_group(entry);
  return recovered;
}

std::optional<repl::LogHead> ClashServer::log_head(
    const KeyGroup& group) const {
  const auto it = logs_.find(group);
  if (it == logs_.end()) return std::nullopt;
  return it->second.head();
}

std::optional<repl::LogHead> ClashServer::replica_head(
    const KeyGroup& group) const {
  const auto it = replicas_.find(group);
  if (it == replicas_.end()) return std::nullopt;
  return it->second.log.head();
}

const GroupState* ClashServer::replica_state(const KeyGroup& group) const {
  const auto it = replicas_.find(group);
  return it == replicas_.end() ? nullptr : &it->second.state;
}

std::size_t ClashServer::handoff_groups(ServerId to) {
  if (to == self_ || !to.valid()) return 0;
  struct Moving {
    KeyGroup group;
    bool root = false;
    ServerId parent{};
  };
  std::vector<Moving> moving;
  for (const ServerTableEntry* e : table_.active_entries()) {
    // Never move a group entangled in an in-flight reclaim: the merge
    // handler needs the local leaves exactly where the reports said.
    if (!e->group.is_root() &&
        pending_reclaims_.count(e->group.sibling()) > 0) {
      continue;
    }
    const auto lookup =
        env_.dht_lookup(hasher_.hash_key(e->group.virtual_key()));
    if (lookup.owner == to) {
      moving.push_back(Moving{e->group, e->root, e->parent});
    }
  }
  for (const auto& mv : moving) {
    AcceptKeyGroup msg;
    msg.group = mv.group;
    msg.parent = mv.parent;
    msg.root = mv.root;
    const auto lit = logs_.find(mv.group);
    msg.epoch = lit != logs_.end() ? lit->second.epoch() : 0;
    GroupState st;
    const auto sit = state_.find(mv.group);
    if (sit != state_.end()) {
      st = std::move(sit->second);
      state_.erase(sit);
    }
    msg.streams.reserve(st.streams.size());
    for (const auto& [_, s] : st.streams) msg.streams.push_back(s);
    msg.queries.reserve(st.queries.size());
    for (const auto& [_, q] : st.queries) msg.queries.push_back(q);
    if (app_hooks_ != nullptr) {
      msg.app_state = app_hooks_->export_state(mv.group, to);
    }
    // Retire replicas and the local entry BEFORE the transfer: the new
    // owner re-replicates on install, and a retire arriving afterwards
    // would wipe the fresh records.
    table_.erase(mv.group);
    child_reports_.erase(mv.group);
    note_group_deactivated(mv.group);
    retire_replicas(mv.group);
    stats_.state_transfer_msgs += state_msgs_for(msg.queries.size());
    stats_.handoffs++;
    env_.send(to, std::move(msg));
  }
  return moving.size();
}

bool ClashServer::promote_replica(const KeyGroup& group) {
  // Stale or duplicate promotion requests must never corrupt the
  // table: refuse when any entry for (or active entry overlapping) the
  // group already exists here. Any recovery session opened for the
  // promotion is dropped with it, or it would suppress the peer
  // probes of every future recovery of this group.
  if (const auto* existing = table_.find(group)) {
    recovery_.cancel(group);
    end_recovery_op(group);
    return existing->active;
  }
  for (const ServerTableEntry* e : table_.active_entries()) {
    if (e->group.covers(group) || group.covers(e->group)) {
      CLASH_WARN << to_string(self_) << ": refusing promotion of "
                 << group.label() << " (overlaps active "
                 << e->group.label() << ")";
      recovery_.cancel(group);
      end_recovery_op(group);
      return false;
    }
  }
  if (log_replication()) return promote_with_recovery(group);
  const auto it = replicas_.find(group);
  ServerTableEntry entry;
  entry.group = group;
  entry.active = true;
  const bool recovered = it != replicas_.end();
  if (recovered) {
    entry.root = it->second.root;
    entry.parent = it->second.parent;
    table_.insert(entry);
    state_[group] = std::move(it->second.state);
    // Locally restored records (and peer-built snapshots) carry the
    // application payload; plain lease replicas leave both empty.
    if (app_hooks_ != nullptr) {
      if (!it->second.app_snapshot.empty()) {
        app_hooks_->import_state(group, it->second.app_snapshot);
      }
      for (const auto& d : it->second.app_tail) {
        app_hooks_->apply_delta(group, d);
      }
    }
    replicas_.erase(it);
    note_group_activated(group);
    stats_.failovers++;
  } else {
    adopt_bare_group(entry);
  }
  flight(obs::FlightKind::kReplicaPromoted, group_tag(group),
         recovered ? 1 : 0);
  // Re-replicate under the new ownership right away: the holders'
  // records still name the dead owner, so until they are refreshed a
  // second failure in this load-check period would strand a perfectly
  // good replica (nobody would look it up under the new owner's id).
  if (cfg_.replication_factor > 0) replicate_group(entry);
  ensure_durable_group(entry);
  return recovered;
}

GroupState ClashServer::extract_subset(GroupState& st,
                                       const KeyGroup& subset) {
  GroupState out;
  for (auto it = st.streams.begin(); it != st.streams.end();) {
    if (subset.contains(it->second.key)) {
      out.stream_rate += it->second.rate;
      st.stream_rate -= it->second.rate;
      out.streams.insert(*it);
      it = st.streams.erase(it);
    } else {
      ++it;
    }
  }
  if (st.stream_rate < 0) st.stream_rate = 0;
  for (auto it = st.queries.begin(); it != st.queries.end();) {
    if (subset.contains(it->second.key)) {
      out.queries.insert(*it);
      it = st.queries.erase(it);
    } else {
      ++it;
    }
  }
  return out;
}

std::uint64_t ClashServer::state_msgs_for(std::size_t query_count) const {
  const unsigned batch = std::max(1u, cfg_.state_batch);
  return (query_count + batch - 1) / batch;
}

double ClashServer::server_load() const {
  double total = 0;
  for (const ServerTableEntry* e : table_.active_entries()) {
    total += load_of(e->group);
  }
  return total;
}

double ClashServer::load_of(const KeyGroup& group) const {
  const auto it = state_.find(group);
  if (it == state_.end()) return 0;
  double load =
      group_load(cfg_, it->second.stream_rate, it->second.queries.size());
  if (app_hooks_ != nullptr) load += app_hooks_->app_load(group);
  return load;
}

bool ClashServer::signal_overload() {
  const auto candidate = pick_split_candidate();
  if (!candidate) return false;
  split_group(*candidate, /*reshed_on_self_map=*/true);
  return true;
}

const GroupState* ClashServer::group_state(const KeyGroup& group) const {
  const auto it = state_.find(group);
  return it == state_.end() ? nullptr : &it->second;
}

std::size_t ClashServer::total_queries() const {
  std::size_t n = 0;
  for (const auto& [_, gs] : state_) n += gs.queries.size();
  return n;
}

std::size_t ClashServer::total_streams() const {
  std::size_t n = 0;
  for (const auto& [_, gs] : state_) n += gs.streams.size();
  return n;
}

std::vector<unsigned> ClashServer::active_depths() const {
  std::vector<unsigned> out;
  for (const ServerTableEntry* e : table_.active_entries()) {
    out.push_back(e->group.depth());
  }
  return out;
}

}  // namespace clash
