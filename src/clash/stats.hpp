// Message/operation counters. The simulator aggregates these to produce
// the paper's Figure 5 (messages/sec/server by class) and the split/
// merge/depth statistics behind Figure 4.
#pragma once

#include <cstdint>

namespace clash {

struct MessageStats {
  // Overlay routing cost: one unit per DHT forwarding hop.
  std::uint64_t dht_hops = 0;
  // ACCEPT_OBJECT probes and their replies.
  std::uint64_t object_probes = 0;
  std::uint64_t object_replies = 0;
  // Group-transfer control traffic.
  std::uint64_t keygroup_transfers = 0;
  std::uint64_t keygroup_acks = 0;
  std::uint64_t load_reports = 0;
  std::uint64_t reclaim_requests = 0;
  std::uint64_t reclaim_replies = 0;
  // Migrated state, in STATE_TRANSFER message units.
  std::uint64_t state_transfer_msgs = 0;
  // Fault-tolerance extension traffic.
  std::uint64_t replications = 0;
  std::uint64_t replica_drops = 0;
  // Replication-log traffic (src/repl/, log mode only).
  std::uint64_t repl_appends = 0;
  std::uint64_t repl_acks = 0;
  std::uint64_t snapshot_offers = 0;
  std::uint64_t snapshot_chunks = 0;
  std::uint64_t anti_entropy_probes = 0;
  std::uint64_t anti_entropy_diffs = 0;
  // SWIM membership traffic (pings, ping-reqs, acks). Kept out of
  // control_messages() so Figure 5's message classes stay paper-exact;
  // bench/abl_membership reports this overhead separately.
  std::uint64_t gossip_msgs = 0;

  // Protocol events (not messages).
  std::uint64_t splits = 0;
  std::uint64_t merges = 0;
  std::uint64_t self_remaps = 0;      // right child mapped back to self
  std::uint64_t merge_refusals = 0;
  std::uint64_t depth_searches = 0;   // client resolution rounds
  std::uint64_t search_restarts = 0;  // stale-range restarts under churn
  std::uint64_t failovers = 0;        // groups promoted from replicas
  std::uint64_t groups_lost = 0;      // failovers without replica state
  std::uint64_t dropped_msgs = 0;     // sends to dead servers
  std::uint64_t handoffs = 0;         // groups handed back on rejoin
  std::uint64_t log_compactions = 0;  // snapshot+compact cycles (log mode)
  std::uint64_t link_drops = 0;       // messages eaten by the fault matrix
  std::uint64_t snapshot_aborts = 0;  // out-of-sync transfers nacked
  std::uint64_t snapshot_offers_ignored = 0;  // dup offers mid-transfer
  /// Encoded bytes of delivered server->server messages. Populated
  /// only when SimCluster::set_wire_metering is on (bench use); zero
  /// otherwise.
  std::uint64_t wire_bytes = 0;

  /// Total protocol messages excluding migrated state (Figure 5 case A).
  [[nodiscard]] std::uint64_t control_messages() const {
    return dht_hops + object_probes + object_replies + keygroup_transfers +
           keygroup_acks + load_reports + reclaim_requests + reclaim_replies +
           replications + replica_drops + replication_log_messages();
  }

  /// All traffic of the log-replication subsystem (appends + acks +
  /// snapshots + anti-entropy), reported separately by abl_failover.
  [[nodiscard]] std::uint64_t replication_log_messages() const {
    return repl_appends + repl_acks + snapshot_offers + snapshot_chunks +
           anti_entropy_probes + anti_entropy_diffs;
  }

  /// Total including state transfer (Figure 5 case B).
  [[nodiscard]] std::uint64_t total_messages() const {
    return control_messages() + state_transfer_msgs;
  }

  MessageStats& operator+=(const MessageStats& o) {
    dht_hops += o.dht_hops;
    object_probes += o.object_probes;
    object_replies += o.object_replies;
    keygroup_transfers += o.keygroup_transfers;
    keygroup_acks += o.keygroup_acks;
    load_reports += o.load_reports;
    reclaim_requests += o.reclaim_requests;
    reclaim_replies += o.reclaim_replies;
    state_transfer_msgs += o.state_transfer_msgs;
    replications += o.replications;
    replica_drops += o.replica_drops;
    repl_appends += o.repl_appends;
    repl_acks += o.repl_acks;
    snapshot_offers += o.snapshot_offers;
    snapshot_chunks += o.snapshot_chunks;
    anti_entropy_probes += o.anti_entropy_probes;
    anti_entropy_diffs += o.anti_entropy_diffs;
    gossip_msgs += o.gossip_msgs;
    splits += o.splits;
    merges += o.merges;
    self_remaps += o.self_remaps;
    merge_refusals += o.merge_refusals;
    depth_searches += o.depth_searches;
    search_restarts += o.search_restarts;
    failovers += o.failovers;
    groups_lost += o.groups_lost;
    dropped_msgs += o.dropped_msgs;
    handoffs += o.handoffs;
    log_compactions += o.log_compactions;
    link_drops += o.link_drops;
    snapshot_aborts += o.snapshot_aborts;
    snapshot_offers_ignored += o.snapshot_offers_ignored;
    wire_bytes += o.wire_bytes;
    return *this;
  }

  friend MessageStats operator-(MessageStats a, const MessageStats& b) {
    a.dht_hops -= b.dht_hops;
    a.object_probes -= b.object_probes;
    a.object_replies -= b.object_replies;
    a.keygroup_transfers -= b.keygroup_transfers;
    a.keygroup_acks -= b.keygroup_acks;
    a.load_reports -= b.load_reports;
    a.reclaim_requests -= b.reclaim_requests;
    a.reclaim_replies -= b.reclaim_replies;
    a.state_transfer_msgs -= b.state_transfer_msgs;
    a.replications -= b.replications;
    a.replica_drops -= b.replica_drops;
    a.repl_appends -= b.repl_appends;
    a.repl_acks -= b.repl_acks;
    a.snapshot_offers -= b.snapshot_offers;
    a.snapshot_chunks -= b.snapshot_chunks;
    a.anti_entropy_probes -= b.anti_entropy_probes;
    a.anti_entropy_diffs -= b.anti_entropy_diffs;
    a.gossip_msgs -= b.gossip_msgs;
    a.splits -= b.splits;
    a.merges -= b.merges;
    a.self_remaps -= b.self_remaps;
    a.merge_refusals -= b.merge_refusals;
    a.depth_searches -= b.depth_searches;
    a.search_restarts -= b.search_restarts;
    a.failovers -= b.failovers;
    a.groups_lost -= b.groups_lost;
    a.dropped_msgs -= b.dropped_msgs;
    a.handoffs -= b.handoffs;
    a.log_compactions -= b.log_compactions;
    a.link_drops -= b.link_drops;
    a.snapshot_aborts -= b.snapshot_aborts;
    a.snapshot_offers_ignored -= b.snapshot_offers_ignored;
    a.wire_bytes -= b.wire_bytes;
    return a;
  }
};

}  // namespace clash
