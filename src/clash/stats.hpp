// Message/operation counters. The simulator aggregates these to produce
// the paper's Figure 5 (messages/sec/server by class) and the split/
// merge/depth statistics behind Figure 4.
#pragma once

#include <cstdint>

namespace clash {

// The single authoritative field list: declarations, arithmetic, and
// name-based iteration (for_each_named feeds the obs exposition) all
// expand from here, so adding a counter touches exactly this table.
#define CLASH_MESSAGE_STATS_FIELDS(X)                                        \
  /* Overlay routing cost: one unit per DHT forwarding hop. */               \
  X(dht_hops)                                                                \
  /* ACCEPT_OBJECT probes and their replies. */                              \
  X(object_probes)                                                           \
  X(object_replies)                                                          \
  /* Group-transfer control traffic. */                                      \
  X(keygroup_transfers)                                                      \
  X(keygroup_acks)                                                           \
  X(load_reports)                                                            \
  X(reclaim_requests)                                                        \
  X(reclaim_replies)                                                         \
  /* Migrated state, in STATE_TRANSFER message units. */                     \
  X(state_transfer_msgs)                                                     \
  /* Fault-tolerance extension traffic. */                                   \
  X(replications)                                                            \
  X(replica_drops)                                                           \
  /* Replication-log traffic (src/repl/, log mode only). */                  \
  X(repl_appends)                                                            \
  X(repl_acks)                                                               \
  X(snapshot_offers)                                                         \
  X(snapshot_chunks)                                                         \
  X(anti_entropy_probes)                                                     \
  X(anti_entropy_diffs)                                                      \
  /* SWIM membership traffic (pings, ping-reqs, acks). Kept out of           \
     control_messages() so Figure 5's message classes stay paper-exact;      \
     bench/abl_membership reports this overhead separately. */               \
  X(gossip_msgs)                                                             \
  /* Protocol events (not messages). */                                      \
  X(splits)                                                                  \
  X(merges)                                                                  \
  X(self_remaps)      /* right child mapped back to self */                  \
  X(merge_refusals)                                                          \
  X(depth_searches)   /* client resolution rounds */                         \
  X(search_restarts)  /* stale-range restarts under churn */                 \
  X(failovers)        /* groups promoted from replicas */                    \
  X(groups_lost)      /* failovers without replica state */                  \
  X(dropped_msgs)     /* sends to dead servers */                            \
  X(handoffs)         /* groups handed back on rejoin */                     \
  X(log_compactions)  /* snapshot+compact cycles (log mode) */               \
  X(link_drops)       /* messages eaten by the fault matrix */               \
  X(snapshot_aborts)  /* out-of-sync transfers nacked */                     \
  X(snapshot_offers_ignored) /* dup offers mid-transfer */                   \
  X(corrupt_drops)    /* in-flight corruption made the payload               \
                         undecodable (codec fence ate it) */                 \
  X(corrupt_rejected) /* decoded-valid corruption rejected by the            \
                         receiver's checksum/sanity fences */                \
  X(slow_evictions)   /* live-but-slow members excommunicated */             \
  /* Cost-census records delivered piggybacked on gossip frames. */          \
  X(census_records)                                                          \
  /* Encoded bytes of delivered server->server messages. Populated           \
     only when SimCluster::set_wire_metering is on (bench use); zero         \
     otherwise. */                                                           \
  X(wire_bytes)                                                              \
  /* Encoded bytes of the census payload inside delivered gossip             \
     frames — numerator of the census overhead gate. Wire-metering           \
     only, like wire_bytes. */                                               \
  X(census_bytes)

struct MessageStats {
#define CLASH_STATS_DECLARE(name) std::uint64_t name = 0;
  CLASH_MESSAGE_STATS_FIELDS(CLASH_STATS_DECLARE)
#undef CLASH_STATS_DECLARE

  /// Apply `f(a.field, b.field)` to every field pair — the one place
  /// the arithmetic operators walk the field list.
  template <typename A, typename B, typename F>
  static void zip(A& a, B& b, F&& f) {
#define CLASH_STATS_ZIP(name) f(a.name, b.name);
    CLASH_MESSAGE_STATS_FIELDS(CLASH_STATS_ZIP)
#undef CLASH_STATS_ZIP
  }

  /// Apply `f("field", value)` to every field (exposition, dumps).
  template <typename F>
  void for_each_named(F&& f) const {
#define CLASH_STATS_NAMED(name) f(#name, name);
    CLASH_MESSAGE_STATS_FIELDS(CLASH_STATS_NAMED)
#undef CLASH_STATS_NAMED
  }

  /// Total protocol messages excluding migrated state (Figure 5 case A).
  [[nodiscard]] std::uint64_t control_messages() const {
    return dht_hops + object_probes + object_replies + keygroup_transfers +
           keygroup_acks + load_reports + reclaim_requests + reclaim_replies +
           replications + replica_drops + replication_log_messages();
  }

  /// All traffic of the log-replication subsystem (appends + acks +
  /// snapshots + anti-entropy), reported separately by abl_failover.
  [[nodiscard]] std::uint64_t replication_log_messages() const {
    return repl_appends + repl_acks + snapshot_offers + snapshot_chunks +
           anti_entropy_probes + anti_entropy_diffs;
  }

  /// Total including state transfer (Figure 5 case B).
  [[nodiscard]] std::uint64_t total_messages() const {
    return control_messages() + state_transfer_msgs;
  }

  MessageStats& operator+=(const MessageStats& o) {
    zip(*this, o, [](std::uint64_t& l, std::uint64_t r) { l += r; });
    return *this;
  }

  friend MessageStats operator-(MessageStats a, const MessageStats& b) {
    zip(a, b, [](std::uint64_t& l, std::uint64_t r) { l -= r; });
    return a;
  }
};

/// Per-key-group resource metering — the Gray cost vector (Distributed
/// Computing Economics): what a group costs its owner in compute and
/// bytes, the signal utility-oriented placement will act on. Byte
/// fields are wire-model estimates (structural sizes), not re-encoded
/// payloads, so metering stays free on the hot path.
struct GroupCost {
  std::uint64_t puts = 0;           // objects accepted into the group
  std::uint64_t matches = 0;        // query matches fired
  std::uint64_t bytes_served = 0;   // put/match traffic served to clients
  std::uint64_t repl_bytes = 0;     // replication stream out (appends,
                                    // snapshots, anti-entropy diffs)
  std::uint64_t storage_bytes = 0;  // WAL appends + snapshot files

  GroupCost& operator+=(const GroupCost& o) {
    puts += o.puts;
    matches += o.matches;
    bytes_served += o.bytes_served;
    repl_bytes += o.repl_bytes;
    storage_bytes += o.storage_bytes;
    return *this;
  }
  [[nodiscard]] std::uint64_t total_bytes() const {
    return bytes_served + repl_bytes + storage_bytes;
  }
};

}  // namespace clash
