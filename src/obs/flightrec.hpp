// FlightRecorder + InflightTable: the per-node black box.
//
// The trace ring (obs/trace.hpp) answers "what did the last few
// milliseconds look like"; by the time a soak run trips an invariant it
// has wrapped past the interesting moment. The flight recorder keeps a
// second, much sparser timeline of *structured lifecycle events* —
// state transitions, epoch bumps, membership verdicts, snapshot
// transfer lifecycle, WAL fsync/rollover, fault-injector decisions —
// compact enough that hours of runtime fit in a few thousand slots.
//
// The InflightTable tracks every long-lived pending operation (a
// ReplAppend batch awaiting acks, a snapshot transfer in either
// direction, a recovery pull, an async connect) with its start time and
// last-progress time, so a postmortem can name exactly what was stuck
// when the process died.
//
// Both structures are lock-free and readable from any thread —
// including a crash-signal handler — without taking a lock:
//   * FlightRecorder slots are seqlock-stamped: the writer invalidates
//     (stamp=0), writes the payload as relaxed atomic words, then
//     publishes (stamp=seq+1, release). A reader accepts a slot only
//     when the stamp it saw before and after the copy is the exact
//     sequence it expected, so torn or overwritten slots are skipped,
//     never misreported.
//   * InflightTable slots are claimed by CAS on an atomic token; every
//     field is a relaxed atomic word, and tokens embed the slot index
//     so progress/end are O(1).
#pragma once

#include <atomic>
#include <cstdint>
#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace clash::obs {

/// One event class per lifecycle edge worth replaying after a crash.
/// Append-only: postmortem consumers key on the name, not the value.
enum class FlightKind : std::uint8_t {
  kGroupActivated = 0,   // a: group id
  kGroupDeactivated,     // a: group id
  kEpochBump,            // a: group id, b: new epoch
  kMemberSuspected,      // a: member
  kMemberDead,           // a: member
  kMemberJoined,         // a: member
  kSnapshotOfferSent,    // a: group id, b: destination
  kSnapshotOfferRecv,    // a: group id, b: sender
  kSnapshotInstalled,    // a: group id, b: chunks received
  kSnapshotAborted,      // a: group id, b: peer
  kRecoveryBegin,        // a: group id
  kRecoveryFinish,       // a: group id, b: ops replayed
  kRecoveryAbandon,      // a: group id
  kReplicaPromoted,      // a: group id, b: epoch
  kWalFsync,             // a: duration usec, b: 1 on failure
  kWalRollover,          // a: new segment index
  kFaultDrop,            // a: peer fd, b: frames dropped so far
  kFaultCorrupt,         // a: peer fd
  kCorruptReject,        // a: peer / source id (CRC fence rejection)
  kStallTick,            // a: tick age usec, b: tick seq
  kStallOp,              // a: op token, b: stall age usec
  kTickOverrun,          // a: tick duration usec, b: budget usec
  kPostmortemDump,       // a: dump ordinal
  kInvariantFail,        // a: caller-defined code
};

[[nodiscard]] const char* flight_kind_name(FlightKind kind);

/// One recorded event. `node` is the recording node's id, `t_us` is the
/// host's microsecond clock (sim time or wall time — whichever clock
/// the embedding layer runs on; consistency within a node is what
/// matters), `a`/`b` are kind-specific payload words (see FlightKind).
struct FlightEvent {
  std::int64_t t_us = 0;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::uint32_t node = 0;
  FlightKind kind = FlightKind::kGroupActivated;
};

class FlightRecorder {
 public:
  /// Capacity is rounded up to a power of two; oldest events are
  /// overwritten once the ring is full.
  explicit FlightRecorder(std::size_t capacity = kDefaultCapacity);

  static constexpr std::size_t kDefaultCapacity = 4096;

  /// Recording gate: a single relaxed load on the hot path. Enabled by
  /// default — the recorder exists for the crashes nobody planned.
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Record one event. Lock-free, wait-free apart from the fetch_add;
  /// safe from any thread. When two writers collide on one slot (the
  /// ring wrapped within their race window) the loser's event is
  /// dropped rather than torn.
  void record(FlightKind kind, std::uint32_t node, std::int64_t t_us,
              std::uint64_t a = 0, std::uint64_t b = 0);

  /// Events ever recorded (including overwritten ones).
  [[nodiscard]] std::uint64_t total() const {
    return next_.load(std::memory_order_relaxed);
  }
  /// Events lost to ring wraparound.
  [[nodiscard]] std::uint64_t dropped() const;
  [[nodiscard]] std::size_t capacity() const { return mask_ + 1; }

  /// Snapshot of the surviving window, oldest first. Slots being
  /// concurrently rewritten are skipped (never misread). Safe from any
  /// thread, including a signal handler (allocates, so only "safe" in
  /// the best-effort crash-dump sense).
  [[nodiscard]] std::vector<FlightEvent> events() const;

  /// Self-describing JSON: {"schema":"clash-flightrec-v1",...}.
  [[nodiscard]] std::string to_json() const;

  /// Reset for test/bench reuse. NOT safe concurrently with record().
  void clear();

 private:
  // Payload packed into four relaxed-atomic words so concurrent
  // overwrite is a well-defined race the stamp protocol resolves,
  // not UB (and TSan-clean).
  /// Slot-claim sentinel: a writer CASes the stamp to this before
  /// touching the payload, so colliding writers never interleave.
  static constexpr std::uint64_t kWriting = ~std::uint64_t{0};

  struct Slot {
    std::atomic<std::uint64_t> stamp{0};  // 0 empty, kWriting claimed,
                                          // seq+1 published
    std::atomic<std::uint64_t> w0{0};  // t_us
    std::atomic<std::uint64_t> w1{0};  // a
    std::atomic<std::uint64_t> w2{0};  // b
    std::atomic<std::uint64_t> w3{0};  // node << 8 | kind
  };

  std::unique_ptr<Slot[]> ring_;
  std::size_t mask_;
  std::atomic<std::uint64_t> next_{0};
  std::atomic<bool> enabled_{true};
};

/// Long-lived async operation classes tracked in the InflightTable.
enum class OpKind : std::uint8_t {
  kReplAppend = 0,  // un-acked append batch(es) toward a group's peers
  kSnapshotOut,     // outbound snapshot transfer (offer + chunk stream)
  kSnapshotIn,      // inbound snapshot assembly
  kRecoveryPull,    // grace-window recovery session for a group
  kConnect,         // async TCP connect toward a peer
};

[[nodiscard]] const char* op_kind_name(OpKind kind);

class InflightTable {
 public:
  static constexpr std::size_t kCapacity = 256;
  /// Group labels longer than this are truncated (quadtree labels at
  /// sane depths fit comfortably).
  static constexpr std::size_t kLabelBytes = 32;

  /// Read-side view of one live operation.
  struct Op {
    std::uint64_t token = 0;
    OpKind kind = OpKind::kReplAppend;
    std::uint32_t node = 0;
    std::uint64_t peer = 0;
    std::string group;
    std::int64_t start_us = 0;
    std::int64_t last_progress_us = 0;
    std::uint64_t progress = 0;  // kind-specific units (chunks, acks…)
    std::uint64_t target = 0;    // expected total, 0 when unknown
  };

  InflightTable();

  /// Register a new in-flight operation; returns its token (never 0).
  /// Returns 0 when the table is full (the op simply goes untracked —
  /// counted in overflow()). Safe from any thread.
  std::uint64_t begin(OpKind kind, std::uint32_t node,
                      std::string_view group, std::uint64_t peer,
                      std::int64_t now_us, std::uint64_t target = 0);

  /// Bump progress (acked one batch, received one chunk…). Tokens from
  /// a failed begin() (0) are ignored, as are stale tokens.
  void progress(std::uint64_t token, std::int64_t now_us,
                std::uint64_t delta = 1);

  /// The operation finished (successfully or not) — free its slot.
  void end(std::uint64_t token);

  [[nodiscard]] std::size_t active() const;
  /// begin() calls refused because the table was full.
  [[nodiscard]] std::uint64_t overflow() const {
    return overflow_.load(std::memory_order_relaxed);
  }

  /// Consistent-enough snapshot of live ops (token re-validated around
  /// the field copy; ops ending mid-copy are dropped).
  [[nodiscard]] std::vector<Op> snapshot() const;

  /// Live ops whose last progress is older than `threshold_us`.
  [[nodiscard]] std::vector<Op> stalled(std::int64_t now_us,
                                        std::int64_t threshold_us) const;

  /// Self-describing JSON: {"schema":"clash-inflight-v1",...}.
  [[nodiscard]] std::string to_json(std::int64_t now_us) const;

  /// Reset for test reuse. NOT safe concurrently with begin/end.
  void clear();

 private:
  struct Slot {
    std::atomic<std::uint64_t> token{0};  // 0 free, kClaimed transient
    std::atomic<std::uint64_t> meta{0};   // node << 8 | kind
    std::atomic<std::uint64_t> peer{0};
    std::atomic<std::int64_t> start_us{0};
    std::atomic<std::int64_t> last_progress_us{0};
    std::atomic<std::uint64_t> progress{0};
    std::atomic<std::uint64_t> target{0};
    // Group label, 8 chars per word, NUL-padded.
    std::atomic<std::uint64_t> label[kLabelBytes / 8]{};
  };

  static constexpr std::uint64_t kClaimed = ~std::uint64_t{0};

  /// Tokens embed the slot index in the low byte: (counter<<8)|slot.
  static std::size_t slot_of(std::uint64_t token) {
    return std::size_t(token & (kCapacity - 1));
  }

  bool read_slot(const Slot& s, Op* out) const;

  Slot slots_[kCapacity];
  std::atomic<std::uint64_t> next_token_{1};
  std::atomic<std::uint64_t> overflow_{0};
};

}  // namespace clash::obs
