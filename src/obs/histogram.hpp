// obs::Histogram: a log-linear (HdrHistogram-style) latency histogram.
// Values 0..2^5 land in width-1 buckets; each octave [2^e, 2^{e+1})
// above that is split into 16 linear sub-buckets, so the relative
// quantisation error is bounded by 2^{1-kSubBits} ~ 6.25%. Recording is
// one bit-scan plus a relaxed atomic increment — cheap enough for the
// transport hot path — and concurrent record/scrape is data-race free
// by construction (every cell is an atomic). Snapshots merge, so
// per-node histograms aggregate into cluster-wide ones.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace clash::obs {

class Histogram {
 public:
  /// Sub-bucket resolution: 2^kSubBits width-1 buckets below the first
  /// octave, 2^kSubBits / 2 linear sub-buckets per octave above.
  static constexpr unsigned kSubBits = 5;
  static constexpr std::uint64_t kSub = 1ull << kSubBits;
  /// Largest representable exponent: values >= 2^kMaxExp usec (~52
  /// days) collapse into the single overflow bucket.
  static constexpr unsigned kMaxExp = 42;
  static constexpr std::size_t kBuckets =
      kSub + (kMaxExp - kSubBits) * (kSub / 2) + 1;

  /// Bucket holding `v`; the last index is the overflow bucket.
  [[nodiscard]] static std::size_t bucket_index(std::uint64_t v) {
    if (v < kSub) return std::size_t(v);
    unsigned e = 63u - unsigned(__builtin_clzll(v));
    if (e >= kMaxExp) return kBuckets - 1;
    std::uint64_t offset = (v - (1ull << e)) >> (e - kSubBits + 1);
    return kSub + std::size_t(e - kSubBits) * (kSub / 2) +
           std::size_t(offset);
  }
  /// Inclusive lower bound of bucket `idx`.
  [[nodiscard]] static std::uint64_t bucket_lo(std::size_t idx) {
    if (idx < kSub) return idx;
    if (idx >= kBuckets - 1) return 1ull << kMaxExp;
    std::size_t j = idx - kSub;
    unsigned e = kSubBits + unsigned(j / (kSub / 2));
    std::uint64_t off = j % (kSub / 2);
    return (1ull << e) + off * (1ull << (e - kSubBits + 1));
  }
  /// Exclusive upper bound of bucket `idx`.
  [[nodiscard]] static std::uint64_t bucket_hi(std::size_t idx) {
    if (idx >= kBuckets - 1) return ~0ull;
    return bucket_lo(idx + 1);
  }

  /// Point-in-time copy of a histogram; plain data, mergeable.
  struct Snapshot {
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t min = 0;
    std::uint64_t max = 0;
    std::vector<std::uint64_t> buckets;  // kBuckets wide (or empty)

    void merge(const Snapshot& o);
    /// Linear interpolation inside the bucket holding the p-th
    /// percentile rank (p in [0, 100]); clamped to [min, max].
    [[nodiscard]] double percentile(double p) const;
    [[nodiscard]] double mean() const {
      return count == 0 ? 0.0 : double(sum) / double(count);
    }
  };

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void record(std::uint64_t v) {
    buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    update_min(v);
    update_max(v);
  }
  /// Negative durations (clock skew, sim-time reuse) clamp to zero
  /// rather than wrapping to 2^64.
  void record_signed(std::int64_t v) {
    record(v > 0 ? std::uint64_t(v) : 0u);
  }

  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] Snapshot snapshot() const;
  void reset();

 private:
  void update_min(std::uint64_t v) {
    std::uint64_t cur = min_.load(std::memory_order_relaxed);
    while (v < cur &&
           !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  void update_max(std::uint64_t v) {
    std::uint64_t cur = max_.load(std::memory_order_relaxed);
    while (v > cur &&
           !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{~0ull};
  std::atomic<std::uint64_t> max_{0};
};

}  // namespace clash::obs
