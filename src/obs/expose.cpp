#include "obs/expose.hpp"

#include <cstdlib>

namespace clash::obs {

std::map<std::string, double> parse_exposition(std::string_view text) {
  std::map<std::string, double> out;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    std::string_view line = text.substr(
        pos, eol == std::string_view::npos ? std::string_view::npos
                                           : eol - pos);
    pos = eol == std::string_view::npos ? text.size() : eol + 1;
    if (line.empty() || line.front() == '#') continue;
    // Series name runs to the last space; labels (if any) are part of
    // the series key: name{quantile="0.5"} 123.
    std::size_t sp = line.rfind(' ');
    if (sp == std::string_view::npos || sp == 0) continue;
    std::string name(line.substr(0, sp));
    std::string val(line.substr(sp + 1));
    char* end = nullptr;
    double v = std::strtod(val.c_str(), &end);
    if (end == val.c_str()) continue;
    out[name] = v;
  }
  return out;
}

bool maybe_embed_metrics(const ArgParser& args, std::string& json,
                         const Registry& reg) {
  if (!args.get_bool("metrics-json", false)) return false;
  // Splice before the artifact's closing brace. Benches emit a single
  // top-level object ending in "}\n" (or "}").
  std::size_t close = json.rfind('}');
  if (close == std::string::npos) return false;
  std::string insert = ",\n  \"schema\": 2,\n  \"metrics\": ";
  insert += reg.render_json(4);
  insert += "\n";
  json.insert(close, insert);
  return true;
}

}  // namespace clash::obs
