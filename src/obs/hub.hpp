// obs::Hub: one metrics registry + one trace recorder + one flight
// recorder / in-flight table — the unit of observability a ServerEnv
// hands the protocol code. The sim substrate and benches share the
// process-global hub; each net::ClashNode owns a private one so
// scrapes stay per-node in multi-node processes (and the stats
// endpoint serves exactly its node's view).
#pragma once

#include "obs/flightrec.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace clash::obs {

struct Hub {
  Registry registry;
  TraceRecorder tracer;
  FlightRecorder flight;
  InflightTable inflight;

  static Hub& global() {
    static Hub* h = new Hub();  // never destroyed: instrumented code
                                // may record during static teardown
    return *h;
  }
};

}  // namespace clash::obs
