#include "obs/flightrec.hpp"

#include <cstring>

namespace clash::obs {

namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

void append_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (std::uint8_t(c) >= 0x20) {
      out.push_back(c);
    }
  }
}

}  // namespace

const char* flight_kind_name(FlightKind kind) {
  switch (kind) {
    case FlightKind::kGroupActivated: return "group_activated";
    case FlightKind::kGroupDeactivated: return "group_deactivated";
    case FlightKind::kEpochBump: return "epoch_bump";
    case FlightKind::kMemberSuspected: return "member_suspected";
    case FlightKind::kMemberDead: return "member_dead";
    case FlightKind::kMemberJoined: return "member_joined";
    case FlightKind::kSnapshotOfferSent: return "snapshot_offer_sent";
    case FlightKind::kSnapshotOfferRecv: return "snapshot_offer_recv";
    case FlightKind::kSnapshotInstalled: return "snapshot_installed";
    case FlightKind::kSnapshotAborted: return "snapshot_aborted";
    case FlightKind::kRecoveryBegin: return "recovery_begin";
    case FlightKind::kRecoveryFinish: return "recovery_finish";
    case FlightKind::kRecoveryAbandon: return "recovery_abandon";
    case FlightKind::kReplicaPromoted: return "replica_promoted";
    case FlightKind::kWalFsync: return "wal_fsync";
    case FlightKind::kWalRollover: return "wal_rollover";
    case FlightKind::kFaultDrop: return "fault_drop";
    case FlightKind::kFaultCorrupt: return "fault_corrupt";
    case FlightKind::kCorruptReject: return "corrupt_reject";
    case FlightKind::kStallTick: return "stall_tick";
    case FlightKind::kStallOp: return "stall_op";
    case FlightKind::kTickOverrun: return "tick_overrun";
    case FlightKind::kPostmortemDump: return "postmortem_dump";
    case FlightKind::kInvariantFail: return "invariant_fail";
  }
  return "unknown";
}

const char* op_kind_name(OpKind kind) {
  switch (kind) {
    case OpKind::kReplAppend: return "repl_append";
    case OpKind::kSnapshotOut: return "snapshot_out";
    case OpKind::kSnapshotIn: return "snapshot_in";
    case OpKind::kRecoveryPull: return "recovery_pull";
    case OpKind::kConnect: return "connect";
  }
  return "unknown";
}

FlightRecorder::FlightRecorder(std::size_t capacity) {
  const std::size_t cap = round_up_pow2(capacity == 0 ? 1 : capacity);
  ring_ = std::make_unique<Slot[]>(cap);
  mask_ = cap - 1;
}

void FlightRecorder::record(FlightKind kind, std::uint32_t node,
                            std::int64_t t_us, std::uint64_t a,
                            std::uint64_t b) {
  if (!enabled_.load(std::memory_order_relaxed)) return;
  const std::uint64_t seq = next_.fetch_add(1, std::memory_order_relaxed);
  Slot& s = ring_[seq & mask_];
  // Claim -> write payload -> publish. The CAS claim serialises
  // writers whose sequences collide on one slot (possible when the
  // ring wraps within one reader pass): without it two writers could
  // interleave payload stores and the later stamp publish would bless
  // the mixture. The loser simply drops its event — its slot was
  // nanoseconds from being overwritten anyway, and a skipped slot is
  // exactly what readers already tolerate. A reader that raced the
  // rewrite sees the claim sentinel or a different sequence and skips.
  std::uint64_t cur = s.stamp.load(std::memory_order_relaxed);
  if (cur == kWriting ||
      !s.stamp.compare_exchange_strong(cur, kWriting,
                                       std::memory_order_acq_rel,
                                       std::memory_order_relaxed)) {
    return;
  }
  s.w0.store(std::uint64_t(t_us), std::memory_order_relaxed);
  s.w1.store(a, std::memory_order_relaxed);
  s.w2.store(b, std::memory_order_relaxed);
  s.w3.store((std::uint64_t(node) << 8) | std::uint64_t(kind),
             std::memory_order_relaxed);
  s.stamp.store(seq + 1, std::memory_order_release);
}

std::uint64_t FlightRecorder::dropped() const {
  const std::uint64_t n = total();
  const std::uint64_t cap = mask_ + 1;
  return n > cap ? n - cap : 0;
}

std::vector<FlightEvent> FlightRecorder::events() const {
  const std::uint64_t end = next_.load(std::memory_order_acquire);
  const std::uint64_t cap = mask_ + 1;
  const std::uint64_t begin = end > cap ? end - cap : 0;
  std::vector<FlightEvent> out;
  out.reserve(std::size_t(end - begin));
  for (std::uint64_t seq = begin; seq < end; ++seq) {
    const Slot& s = ring_[seq & mask_];
    const std::uint64_t before = s.stamp.load(std::memory_order_acquire);
    if (before != seq + 1) continue;  // overwritten or mid-write
    FlightEvent ev;
    ev.t_us = std::int64_t(s.w0.load(std::memory_order_relaxed));
    ev.a = s.w1.load(std::memory_order_relaxed);
    ev.b = s.w2.load(std::memory_order_relaxed);
    const std::uint64_t w3 = s.w3.load(std::memory_order_relaxed);
    ev.node = std::uint32_t(w3 >> 8);
    ev.kind = FlightKind(w3 & 0xff);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (s.stamp.load(std::memory_order_relaxed) != before) continue;
    out.push_back(ev);
  }
  return out;
}

std::string FlightRecorder::to_json() const {
  const auto evs = events();
  std::string out;
  out.reserve(64 + evs.size() * 96);
  out += "{\"schema\":\"clash-flightrec-v1\",\"total\":";
  out += std::to_string(total());
  out += ",\"dropped\":";
  out += std::to_string(dropped());
  out += ",\"capacity\":";
  out += std::to_string(capacity());
  out += ",\"events\":[";
  bool first = true;
  for (const auto& ev : evs) {
    if (!first) out.push_back(',');
    first = false;
    out += "{\"t_us\":";
    out += std::to_string(ev.t_us);
    out += ",\"node\":";
    out += std::to_string(ev.node);
    out += ",\"kind\":\"";
    out += flight_kind_name(ev.kind);
    out += "\",\"a\":";
    out += std::to_string(ev.a);
    out += ",\"b\":";
    out += std::to_string(ev.b);
    out.push_back('}');
  }
  out += "]}";
  return out;
}

void FlightRecorder::clear() {
  for (std::size_t i = 0; i <= mask_; ++i) {
    ring_[i].stamp.store(0, std::memory_order_relaxed);
  }
  next_.store(0, std::memory_order_relaxed);
}

InflightTable::InflightTable() = default;

std::uint64_t InflightTable::begin(OpKind kind, std::uint32_t node,
                                   std::string_view group,
                                   std::uint64_t peer, std::int64_t now_us,
                                   std::uint64_t target) {
  for (std::size_t i = 0; i < kCapacity; ++i) {
    Slot& s = slots_[i];
    std::uint64_t expected = 0;
    if (!s.token.compare_exchange_strong(expected, kClaimed,
                                         std::memory_order_acq_rel,
                                         std::memory_order_relaxed)) {
      continue;
    }
    s.meta.store((std::uint64_t(node) << 8) | std::uint64_t(kind),
                 std::memory_order_relaxed);
    s.peer.store(peer, std::memory_order_relaxed);
    s.start_us.store(now_us, std::memory_order_relaxed);
    s.last_progress_us.store(now_us, std::memory_order_relaxed);
    s.progress.store(0, std::memory_order_relaxed);
    s.target.store(target, std::memory_order_relaxed);
    char label[kLabelBytes] = {};
    const std::size_t n = group.size() < kLabelBytes - 1
                              ? group.size()
                              : kLabelBytes - 1;
    std::memcpy(label, group.data(), n);
    for (std::size_t w = 0; w < kLabelBytes / 8; ++w) {
      std::uint64_t word;
      std::memcpy(&word, label + w * 8, 8);
      s.label[w].store(word, std::memory_order_relaxed);
    }
    // Token counter never wraps into the index byte range in any
    // realistic run (2^56 begins); slot index rides in the low byte.
    const std::uint64_t token =
        (next_token_.fetch_add(1, std::memory_order_relaxed) << 8) |
        std::uint64_t(i);
    s.token.store(token, std::memory_order_release);
    return token;
  }
  overflow_.fetch_add(1, std::memory_order_relaxed);
  return 0;
}

void InflightTable::progress(std::uint64_t token, std::int64_t now_us,
                             std::uint64_t delta) {
  if (token == 0) return;
  Slot& s = slots_[slot_of(token)];
  if (s.token.load(std::memory_order_acquire) != token) return;
  s.progress.fetch_add(delta, std::memory_order_relaxed);
  s.last_progress_us.store(now_us, std::memory_order_relaxed);
}

void InflightTable::end(std::uint64_t token) {
  if (token == 0) return;
  Slot& s = slots_[slot_of(token)];
  std::uint64_t expected = token;
  s.token.compare_exchange_strong(expected, 0, std::memory_order_acq_rel,
                                  std::memory_order_relaxed);
}

std::size_t InflightTable::active() const {
  std::size_t n = 0;
  for (const Slot& s : slots_) {
    const std::uint64_t t = s.token.load(std::memory_order_relaxed);
    if (t != 0 && t != kClaimed) ++n;
  }
  return n;
}

bool InflightTable::read_slot(const Slot& s, Op* out) const {
  const std::uint64_t token = s.token.load(std::memory_order_acquire);
  if (token == 0 || token == kClaimed) return false;
  Op op;
  op.token = token;
  const std::uint64_t meta = s.meta.load(std::memory_order_relaxed);
  op.kind = OpKind(meta & 0xff);
  op.node = std::uint32_t(meta >> 8);
  op.peer = s.peer.load(std::memory_order_relaxed);
  op.start_us = s.start_us.load(std::memory_order_relaxed);
  op.last_progress_us = s.last_progress_us.load(std::memory_order_relaxed);
  op.progress = s.progress.load(std::memory_order_relaxed);
  op.target = s.target.load(std::memory_order_relaxed);
  char label[kLabelBytes];
  for (std::size_t w = 0; w < kLabelBytes / 8; ++w) {
    const std::uint64_t word = s.label[w].load(std::memory_order_relaxed);
    std::memcpy(label + w * 8, &word, 8);
  }
  label[kLabelBytes - 1] = '\0';
  op.group.assign(label);
  std::atomic_thread_fence(std::memory_order_acquire);
  if (s.token.load(std::memory_order_relaxed) != token) return false;
  *out = std::move(op);
  return true;
}

std::vector<InflightTable::Op> InflightTable::snapshot() const {
  std::vector<Op> out;
  for (const Slot& s : slots_) {
    Op op;
    if (read_slot(s, &op)) out.push_back(std::move(op));
  }
  return out;
}

std::vector<InflightTable::Op> InflightTable::stalled(
    std::int64_t now_us, std::int64_t threshold_us) const {
  std::vector<Op> out;
  for (const Slot& s : slots_) {
    Op op;
    if (read_slot(s, &op) && now_us - op.last_progress_us >= threshold_us) {
      out.push_back(std::move(op));
    }
  }
  return out;
}

std::string InflightTable::to_json(std::int64_t now_us) const {
  const auto ops = snapshot();
  std::string out;
  out.reserve(64 + ops.size() * 160);
  out += "{\"schema\":\"clash-inflight-v1\",\"now_us\":";
  out += std::to_string(now_us);
  out += ",\"active\":";
  out += std::to_string(ops.size());
  out += ",\"overflow\":";
  out += std::to_string(overflow());
  out += ",\"ops\":[";
  bool first = true;
  for (const auto& op : ops) {
    if (!first) out.push_back(',');
    first = false;
    out += "{\"kind\":\"";
    out += op_kind_name(op.kind);
    out += "\",\"node\":";
    out += std::to_string(op.node);
    out += ",\"group\":\"";
    append_escaped(out, op.group);
    out += "\",\"peer\":";
    out += std::to_string(op.peer);
    out += ",\"start_us\":";
    out += std::to_string(op.start_us);
    out += ",\"last_progress_us\":";
    out += std::to_string(op.last_progress_us);
    out += ",\"age_us\":";
    out += std::to_string(now_us - op.start_us);
    out += ",\"since_progress_us\":";
    out += std::to_string(now_us - op.last_progress_us);
    out += ",\"progress\":";
    out += std::to_string(op.progress);
    out += ",\"target\":";
    out += std::to_string(op.target);
    out.push_back('}');
  }
  out += "]}";
  return out;
}

void InflightTable::clear() {
  for (Slot& s : slots_) s.token.store(0, std::memory_order_relaxed);
  overflow_.store(0, std::memory_order_relaxed);
}

}  // namespace clash::obs
