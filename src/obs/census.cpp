#include "obs/census.hpp"

#include <algorithm>

#include "wire/codec.hpp"

namespace clash::obs {

void Census::tick(std::uint64_t self_incarnation) {
  affinity_.assert_held();
  ++ticks_;
  // Age every peer record and expire the silent ones. The local record
  // never expires — it is about to be refreshed below or soon after.
  for (auto it = table_.begin(); it != table_.end();) {
    if (it->first == self_.value) {
      ++it;
      continue;
    }
    if (++it->second.age_periods > cfg_.ttl_periods) {
      it = table_.erase(it);
    } else {
      ++it;
    }
  }
  const auto cadence = std::max<std::uint64_t>(1, cfg_.refresh_periods);
  if (collector_ && (ticks_ == 1 || ticks_ % cadence == 0)) {
    refresh_local(self_incarnation);
  }
}

void Census::refresh_local(std::uint64_t self_incarnation) {
  NodeCensusRecord rec;
  collector_(rec);
  rec.node = self_;
  rec.incarnation = self_incarnation;
  rec.seq = ++next_seq_;
  if (rec.top_groups.size() > cfg_.top_k) {
    rec.top_groups.resize(cfg_.top_k);
  }
  rec.checksum = wire::census_record_crc(rec);
  auto& slot = table_[self_.value];
  slot.rec = std::move(rec);
  slot.age_periods = 0;
  slot.transmits_left = cfg_.transmit_budget;
}

bool Census::absorb(const NodeCensusRecord& rec) {
  affinity_.assert_held();
  if (rec.node == self_) return false;  // we are the authority on us
  auto it = table_.find(rec.node.value);
  if (it != table_.end()) {
    const auto& have = it->second.rec;
    const auto ours = std::make_pair(have.incarnation, have.seq);
    const auto theirs = std::make_pair(rec.incarnation, rec.seq);
    if (theirs < ours) {
      ++stale_rejected_;
      return false;
    }
    if (theirs == ours) {        // duplicate relay: refresh the age so
      it->second.age_periods = 0;  // a live quiet peer never expires
      return false;
    }
  }
  auto& slot = table_[rec.node.value];
  slot.rec = rec;
  slot.age_periods = 0;
  slot.transmits_left = cfg_.transmit_budget;
  ++absorbed_;
  return true;
}

void Census::forget(ServerId node) {
  affinity_.assert_held();
  if (node == self_) return;
  table_.erase(node.value);
}

std::vector<NodeCensusRecord> Census::pick_records(std::size_t max) {
  affinity_.assert_held();
  std::vector<NodeCensusRecord> out;
  if (max == 0 || table_.empty()) return out;
  // Both passes scan the table in ring order, starting just past where
  // the last frame's cursor stopped. This is load-bearing: under heavy
  // refresh traffic most records hold transmit budget most of the
  // time, and an id-ordered budget pass would hand every frame's slots
  // to the lowest ids forever — high-id records (and their updates)
  // would never leave their publisher, so big clusters would converge
  // on a prefix of the id space and stall.
  std::vector<std::map<std::uint64_t, Slot>::iterator> ring;
  ring.reserve(table_.size());
  for (auto it = table_.upper_bound(rotor_); it != table_.end(); ++it) {
    ring.push_back(it);
  }
  for (auto it = table_.begin();
       it != table_.end() && it->first <= rotor_; ++it) {
    ring.push_back(it);
  }
  // Pass 1: records still inside their epidemic push budget.
  for (const auto& it : ring) {
    if (out.size() >= max) break;
    if (it->second.transmits_left > 0) {
      --it->second.transmits_left;
      out.push_back(it->second.rec);
      rotor_ = it->first;
    }
  }
  // Pass 2: round-robin backfill — background anti-entropy so two
  // healed sides reconcile even when nothing is changing.
  for (const auto& it : ring) {
    if (out.size() >= max) break;
    const auto& rec = it->second.rec;
    const bool already =
        std::any_of(out.begin(), out.end(), [&](const NodeCensusRecord& r) {
          return r.node == rec.node;
        });
    if (!already) {
      out.push_back(rec);
      rotor_ = it->first;
    }
  }
  return out;
}

const NodeCensusRecord* Census::record_of(ServerId node) const {
  affinity_.assert_held();
  const auto it = table_.find(node.value);
  return it == table_.end() ? nullptr : &it->second.rec;
}

ClusterView Census::view() const {
  affinity_.assert_held();
  ClusterView v;
  v.nodes.reserve(table_.size());
  std::map<KeyGroup, GroupCost> merged;
  for (const auto& [id, slot] : table_) {
    const auto& rec = slot.rec;
    ClusterView::Node n;
    n.id = rec.node;
    n.incarnation = rec.incarnation;
    n.seq = rec.seq;
    n.load = rec.load;
    n.active_groups = rec.active_groups;
    n.replica_records = rec.replica_records;
    n.queries = rec.queries;
    n.streams = rec.streams;
    n.totals = rec.totals;
    n.age_periods = slot.age_periods;
    v.nodes.push_back(n);

    v.totals += rec.totals;
    v.total_load += rec.load;
    v.total_queries += rec.queries;
    v.total_streams += rec.streams;
    v.total_groups += rec.active_groups;
    v.total_replicas += rec.replica_records;
    v.max_age_periods = std::max(v.max_age_periods, slot.age_periods);
    for (const auto& gc : rec.top_groups) merged[gc.group] += gc.cost;
  }
  v.top_groups.reserve(merged.size());
  for (const auto& [group, cost] : merged) {
    v.top_groups.push_back(CensusGroupCost{group, cost});
  }
  std::sort(v.top_groups.begin(), v.top_groups.end(),
            [](const CensusGroupCost& a, const CensusGroupCost& b) {
              if (a.cost.total_bytes() != b.cost.total_bytes()) {
                return a.cost.total_bytes() > b.cost.total_bytes();
              }
              return a.group < b.group;
            });
  return v;
}

}  // namespace clash::obs
