// obs::TraceRecorder: a bounded ring of typed spans exported as Chrome
// trace_event JSON (load in chrome://tracing or ui.perfetto.dev).
// Recording is off by default and gated by one atomic load, so
// instrumented code calls record() unconditionally; when the ring
// fills, the oldest spans are overwritten (dropped() reports how
// many). Timestamps are whatever clock the caller passes — sim time in
// SimCluster, wall microseconds in net::ClashNode — the export is
// agnostic.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/mutex.hpp"
#include "common/sim_time.hpp"
#include "common/thread_annotations.hpp"

namespace clash::obs {

enum class SpanKind : std::uint8_t {
  kQueryMatch,        // cq engine: one process() batch that fired matches
  kCommit,            // repl: ReplAppend send -> first ok ReplAck
  kFailover,          // recovery session open -> replica promoted
  kSnapshotTransfer,  // snapshot offer accepted -> image installed
  kWalFsync,          // storage: one fsync of the WAL
  kLoopTick,          // net: one slow event-loop dispatch round
  kRecoveryScan,      // storage: crash-recovery scan at startup
  kIngest,            // clash: owner accepted an object (put/query)
  kReplApply,         // repl: replica applied a ReplAppend batch
};

[[nodiscard]] const char* span_name(SpanKind k);
[[nodiscard]] const char* span_category(SpanKind k);

struct Span {
  SpanKind kind = SpanKind::kCommit;
  std::uint64_t pid = 0;       // server/node id
  std::int64_t start_us = 0;   // caller's clock
  std::int64_t dur_us = 0;
  std::uint64_t arg = 0;       // kind-specific (group bits, bytes, seq)
  /// Cross-node correlation id: spans of one logical operation carry
  /// the same nonzero id on every node it touched, so per-node dumps
  /// stitch into one flow. 0 = untraced.
  std::uint64_t trace_id = 0;
};

class TraceRecorder {
 public:
  explicit TraceRecorder(std::size_t capacity = 16384)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  void record(SpanKind kind, std::uint64_t pid, SimTime start,
              SimDuration dur, std::uint64_t arg = 0,
              std::uint64_t trace_id = 0) CLASH_EXCLUDES(mu_) {
    if (!enabled()) return;
    const common::MutexLock lock(mu_);
    Span s{kind, pid, start.usec, dur.usec < 0 ? 0 : dur.usec, arg,
           trace_id};
    if (ring_.size() < capacity_) {
      ring_.push_back(s);
    } else {
      ring_[next_ % capacity_] = s;
    }
    ++next_;
  }

  [[nodiscard]] std::vector<Span> spans() const CLASH_EXCLUDES(mu_);
  /// Spans overwritten because the ring was full.
  [[nodiscard]] std::uint64_t dropped() const CLASH_EXCLUDES(mu_);
  void clear() CLASH_EXCLUDES(mu_);

  /// {"traceEvents": [...]} — complete "X" (duration) events, one
  /// track per (pid, span kind).
  [[nodiscard]] std::string to_chrome_json() const CLASH_EXCLUDES(mu_);

 private:
  const std::size_t capacity_;
  std::atomic<bool> enabled_{false};
  mutable common::Mutex mu_;
  std::vector<Span> ring_ CLASH_GUARDED_BY(mu_);
  std::uint64_t next_ CLASH_GUARDED_BY(mu_) = 0;  // total recorded
};

}  // namespace clash::obs
