#include "obs/postmortem.hpp"

#include <chrono>
#include <csignal>
#include <cstdio>
#include <ctime>
#include <thread>

#include <unistd.h>

#include "obs/hub.hpp"

namespace clash::obs {

namespace {

void append_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (std::uint8_t(c) >= 0x20) {
      out.push_back(c);
    } else if (c == '\n') {
      out += "\\n";
    }
  }
}

extern "C" void postmortem_signal_handler(int signo) {
  // Re-arm to default BEFORE dumping: a second fault inside the dump
  // path (we are past all async-signal-safety guarantees here — this
  // is best-effort black-box recovery, not a correctness path) kills
  // the process instead of recursing.
  std::signal(signo, SIG_DFL);
  const char* name = "signal";
  switch (signo) {
    case SIGSEGV: name = "SIGSEGV"; break;
    case SIGABRT: name = "SIGABRT"; break;
    case SIGBUS: name = "SIGBUS"; break;
    case SIGFPE: name = "SIGFPE"; break;
    case SIGILL: name = "SIGILL"; break;
    default: break;
  }
  const std::string path = Postmortem::global().dump(name);
  if (!path.empty()) {
    // write(2) is signal-safe; stdio is not.
    const std::string line = "postmortem: " + path + "\n";
    [[maybe_unused]] const auto n =
        ::write(STDERR_FILENO, line.data(), line.size());
  }
  ::raise(signo);
}

}  // namespace

Postmortem& Postmortem::global() {
  static Postmortem* pm = new Postmortem();  // never destroyed
  return *pm;
}

void Postmortem::set_dir(std::string dir) {
  const common::MutexLock lock(mu_);
  dir_ = std::move(dir);
}

std::string Postmortem::dir() const {
  const common::MutexLock lock(mu_);
  return dir_;
}

std::uint64_t Postmortem::add_source(std::string name,
                                     std::function<std::string()> render) {
  const common::MutexLock lock(mu_);
  const std::uint64_t id = next_id_++;
  sources_.push_back(Source{id, std::move(name), std::move(render)});
  return id;
}

void Postmortem::remove_source(std::uint64_t id) {
  const common::MutexLock lock(mu_);
  std::erase_if(sources_, [id](const Source& s) { return s.id == id; });
}

std::string Postmortem::render(std::string_view reason) {
  std::string out;
  out.reserve(4096);
  out += "{\"schema\":\"clash-postmortem-v1\",\"reason\":\"";
  append_escaped(out, reason);
  out += "\",\"unix_time\":";
  out += std::to_string(std::int64_t(::time(nullptr)));
  out += ",\"pid\":";
  out += std::to_string(std::int64_t(::getpid()));

  // Bounded try_lock spin: a crashing thread must never deadlock on a
  // lock some wedged (or self-same) thread holds. ~1s worst case.
  bool locked = false;
  for (int i = 0; i < 1000 && !locked; ++i) {
    locked = mu_.try_lock();
    // Crash-path backoff; never runs on an event loop.
    if (!locked) {
      std::this_thread::sleep_for(  // lint:allow-blocking(crash path)
          std::chrono::milliseconds(1));
    }
  }
  if (!locked) {
    out += ",\"sources_unavailable\":true,\"sources\":{}}";
    return out;
  }
  out += ",\"sources\":{";
  bool first = true;
  for (const Source& src : sources_) {
    if (!first) out.push_back(',');
    first = false;
    out.push_back('"');
    append_escaped(out, src.name);
    out += "\":";
    std::string body;
    try {
      body = src.render ? src.render() : std::string("null");
    } catch (...) {
      body = "\"<source threw>\"";
    }
    out += body.empty() ? "null" : body;
  }
  out += "}}";
  mu_.unlock();
  return out;
}

std::string Postmortem::dump(std::string_view reason) {
  const std::uint64_t n = ordinal_.fetch_add(1, std::memory_order_relaxed);
  const std::string body = render(reason);
  std::string base;
  {
    // try_lock, not lock: dir_ may be held by a thread we interrupted.
    if (mu_.try_lock()) {
      base = dir_;
      mu_.unlock();
    }
  }
  if (base.empty()) return "";
  std::string path = base + "/postmortem-" +
                     std::to_string(std::int64_t(::time(nullptr))) + "-" +
                     std::to_string(std::int64_t(::getpid())) + "-" +
                     std::to_string(n) + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return "";
  const std::size_t wrote = std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
  if (wrote != body.size()) return "";
  dumps_.fetch_add(1, std::memory_order_relaxed);
  return path;
}

void Postmortem::install_crash_handler() {
  for (const int signo : {SIGSEGV, SIGABRT, SIGBUS, SIGFPE, SIGILL}) {
    std::signal(signo, &postmortem_signal_handler);
  }
}

std::uint64_t register_hub_source(Postmortem& pm, Hub& hub,
                                  std::string name,
                                  std::function<std::int64_t()> now_us) {
  return pm.add_source(
      std::move(name), [&hub, now = std::move(now_us)]() {
        std::string out = "{\"flight\":";
        out += hub.flight.to_json();
        out += ",\"inflight\":";
        out += hub.inflight.to_json(now ? now() : 0);
        out += "}";
        return out;
      });
}

}  // namespace clash::obs
