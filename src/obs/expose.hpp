// Exposition helpers: the parser for the Prometheus-style text format
// Registry::render_text() emits (used by the registry tests and the
// ClashNode stats-endpoint round-trip test), and the bench-artifact
// hook that embeds a registry's histogram summaries into a JSON
// artifact under a versioned "schema": 2 key when the bench was run
// with --metrics-json.
#pragma once

#include <map>
#include <string>
#include <string_view>

#include "common/argparse.hpp"
#include "obs/registry.hpp"

namespace clash::obs {

/// Parse a text exposition back into {series -> value}. Histogram
/// summaries expand into "name{quantile=\"0.5\"}", "name_sum",
/// "name_count" entries; comment lines ("# TYPE ...") are skipped.
[[nodiscard]] std::map<std::string, double> parse_exposition(
    std::string_view text);

/// When `args` carries --metrics-json, rewrite `json` (a complete JSON
/// object) so its top level gains  "schema": 2  and a "metrics"
/// section rendered from `reg`. Returns true when the section was
/// embedded.
bool maybe_embed_metrics(const ArgParser& args, std::string& json,
                         const Registry& reg);

}  // namespace clash::obs
