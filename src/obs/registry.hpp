// obs::Registry: named counters, gauges, and histograms with lock-free
// hot paths. Counters are striped across cache-line-padded atomic
// cells (threads hash to a stripe, so the transport loop never
// contends with a scrape); gauges are single atomics or callbacks
// evaluated at scrape time; histograms are obs::Histogram. Handles are
// value types that may be empty (default-constructed), in which case
// every operation is a no-op — instrumented code never null-checks.
// Metrics are get-or-created by name, so two subsystems asking for the
// same series share one cell and their recordings merge naturally.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"
#include "obs/histogram.hpp"

namespace clash::obs {

namespace detail {

/// One striped counter: stripes are cache-line padded so concurrent
/// writers on different threads do not false-share.
struct CounterCell {
  static constexpr std::size_t kStripes = 16;
  struct alignas(64) Stripe {
    std::atomic<std::uint64_t> v{0};
  };
  Stripe stripes[kStripes];

  static std::size_t my_stripe();
  void add(std::uint64_t n) {
    static thread_local std::size_t slot = my_stripe();
    stripes[slot].v.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const {
    std::uint64_t total = 0;
    for (const auto& s : stripes) {
      total += s.v.load(std::memory_order_relaxed);
    }
    return total;
  }
  void reset() {
    for (auto& s : stripes) s.v.store(0, std::memory_order_relaxed);
  }
};

struct GaugeCell {
  std::atomic<std::int64_t> v{0};
};

}  // namespace detail

class Counter {
 public:
  Counter() = default;
  void inc(std::uint64_t n = 1) {
    if (cell_ != nullptr) cell_->add(n);
  }
  [[nodiscard]] std::uint64_t value() const {
    return cell_ == nullptr ? 0 : cell_->value();
  }
  [[nodiscard]] bool valid() const { return cell_ != nullptr; }

 private:
  friend class Registry;
  explicit Counter(detail::CounterCell* c) : cell_(c) {}
  detail::CounterCell* cell_ = nullptr;
};

class Gauge {
 public:
  Gauge() = default;
  void set(std::int64_t v) {
    if (cell_ != nullptr) cell_->v.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t d) {
    if (cell_ != nullptr) cell_->v.fetch_add(d, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t value() const {
    return cell_ == nullptr ? 0 : cell_->v.load(std::memory_order_relaxed);
  }
  [[nodiscard]] bool valid() const { return cell_ != nullptr; }

 private:
  friend class Registry;
  explicit Gauge(detail::GaugeCell* c) : cell_(c) {}
  detail::GaugeCell* cell_ = nullptr;
};

class HistogramHandle {
 public:
  HistogramHandle() = default;
  void record(std::uint64_t v) {
    if (hist_ != nullptr) hist_->record(v);
  }
  void record_signed(std::int64_t v) {
    if (hist_ != nullptr) hist_->record_signed(v);
  }
  [[nodiscard]] bool valid() const { return hist_ != nullptr; }
  /// The underlying histogram (null for an empty handle); for direct
  /// attachment to hot loops (EventLoop's tick timer).
  [[nodiscard]] Histogram* raw() const { return hist_; }

 private:
  friend class Registry;
  explicit HistogramHandle(Histogram* h) : hist_(h) {}
  Histogram* hist_ = nullptr;
};

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Get-or-create by name. Handles stay valid for the registry's
  /// lifetime (cells are never destroyed, only reset).
  Counter counter(std::string_view name) CLASH_EXCLUDES(mu_);
  Gauge gauge(std::string_view name) CLASH_EXCLUDES(mu_);
  HistogramHandle histogram(std::string_view name) CLASH_EXCLUDES(mu_);
  /// A gauge computed at scrape time. Replaces any previous callback
  /// under the same name. The callback must be safe to run on whatever
  /// thread scrapes (ClashNode scrapes on its event loop only), and it
  /// runs under mu_: scraping or registering from inside one deadlocks
  /// (hence the CLASH_EXCLUDES on every public method).
  void gauge_callback(std::string_view name, std::function<double()> fn)
      CLASH_EXCLUDES(mu_);

  /// One scraped metric; exactly one of value / hist is meaningful.
  struct MetricValue {
    enum class Kind { kCounter, kGauge, kHistogram };
    std::string name;
    Kind kind = Kind::kCounter;
    double value = 0;
    Histogram::Snapshot hist;
  };
  /// Point-in-time view of every metric, sorted by name.
  [[nodiscard]] std::vector<MetricValue> scrape() const CLASH_EXCLUDES(mu_);

  /// Prometheus-style text exposition (counters/gauges as-is,
  /// histograms as summaries with quantile labels).
  [[nodiscard]] std::string render_text() const CLASH_EXCLUDES(mu_);
  /// JSON object {"name": value | {count,min,max,mean,p50,...}} for
  /// embedding into bench artifacts.
  [[nodiscard]] std::string render_json(int indent = 2) const
      CLASH_EXCLUDES(mu_);

  /// Snapshot of one histogram by name, if it exists and has samples.
  [[nodiscard]] Histogram::Snapshot histogram_snapshot(
      std::string_view name) const CLASH_EXCLUDES(mu_);
  [[nodiscard]] std::uint64_t counter_value(std::string_view name) const
      CLASH_EXCLUDES(mu_);

  /// Zero every counter/gauge/histogram (callbacks are kept). For
  /// benches that run several configurations in one process.
  void reset() CLASH_EXCLUDES(mu_);

 private:
  mutable common::Mutex mu_;
  std::map<std::string, std::unique_ptr<detail::CounterCell>, std::less<>>
      counters_ CLASH_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<detail::GaugeCell>, std::less<>>
      gauges_ CLASH_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> hists_
      CLASH_GUARDED_BY(mu_);
  std::map<std::string, std::function<double()>, std::less<>> callbacks_
      CLASH_GUARDED_BY(mu_);
};

}  // namespace clash::obs
