#include "obs/trace.hpp"

#include <algorithm>

namespace clash::obs {

const char* span_name(SpanKind k) {
  switch (k) {
    case SpanKind::kQueryMatch:
      return "query_match";
    case SpanKind::kCommit:
      return "repl_commit";
    case SpanKind::kFailover:
      return "failover";
    case SpanKind::kSnapshotTransfer:
      return "snapshot_transfer";
    case SpanKind::kWalFsync:
      return "wal_fsync";
    case SpanKind::kLoopTick:
      return "loop_tick";
    case SpanKind::kRecoveryScan:
      return "recovery_scan";
    case SpanKind::kIngest:
      return "ingest";
    case SpanKind::kReplApply:
      return "repl_apply";
  }
  return "span";
}

const char* span_category(SpanKind k) {
  switch (k) {
    case SpanKind::kQueryMatch:
      return "cq";
    case SpanKind::kCommit:
      return "repl";
    case SpanKind::kFailover:
      return "repl";
    case SpanKind::kSnapshotTransfer:
      return "repl";
    case SpanKind::kWalFsync:
      return "storage";
    case SpanKind::kLoopTick:
      return "net";
    case SpanKind::kRecoveryScan:
      return "storage";
    case SpanKind::kIngest:
      return "clash";
    case SpanKind::kReplApply:
      return "repl";
  }
  return "obs";
}

std::vector<Span> TraceRecorder::spans() const {
  const common::MutexLock lock(mu_);
  if (next_ <= ring_.size()) return ring_;
  // Ring wrapped: oldest surviving span sits at the write cursor.
  std::vector<Span> out;
  out.reserve(ring_.size());
  std::size_t head = next_ % capacity_;
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(head + i) % capacity_]);
  }
  return out;
}

std::uint64_t TraceRecorder::dropped() const {
  const common::MutexLock lock(mu_);
  return next_ <= capacity_ ? 0 : next_ - capacity_;
}

void TraceRecorder::clear() {
  const common::MutexLock lock(mu_);
  ring_.clear();
  next_ = 0;
}

std::string TraceRecorder::to_chrome_json() const {
  auto all = spans();
  std::stable_sort(all.begin(), all.end(), [](const Span& a, const Span& b) {
    return a.start_us < b.start_us;
  });
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const auto& s : all) {
    if (!first) out += ",";
    first = false;
    out += "\n{\"name\":\"";
    out += span_name(s.kind);
    out += "\",\"cat\":\"";
    out += span_category(s.kind);
    out += "\",\"ph\":\"X\",\"ts\":";
    out += std::to_string(s.start_us);
    out += ",\"dur\":";
    out += std::to_string(s.dur_us);
    out += ",\"pid\":";
    out += std::to_string(s.pid);
    out += ",\"tid\":";
    out += std::to_string(unsigned(s.kind));
    out += ",\"args\":{\"arg\":";
    out += std::to_string(s.arg);
    if (s.trace_id != 0) {
      // Decimal id string: grep-able across per-node dumps, and what
      // the bench-side merge matches on.
      out += ",\"trace_id\":\"";
      out += std::to_string(s.trace_id);
      out += "\"";
    }
    out += "}}";
  }
  out += "\n]}\n";
  return out;
}

}  // namespace clash::obs
