// Postmortem: the crash/abort dump plane. A process-global registry of
// named JSON sources (each node registers its flight ring, in-flight
// table, and a cached registry/census snapshot) plus signal handlers
// (SIGSEGV/SIGABRT/SIGBUS/SIGFPE/SIGILL) and a programmatic dump()
// entry point for invariant-check and ablation-gate failures. A dump
// serializes every source to one self-describing JSON file,
// `<dir>/postmortem-<unixtime>-<pid>-<n>.json`, so a CI failure or a
// two-hour soak crash ships its own black box.
//
// Crash-context honesty: dump() runs on whatever thread is dying. It
// must not block on a lock a wedged thread holds, so the source table
// is acquired with a bounded try_lock spin; when that fails the dump
// still writes its header (reason, time, pid) with the sources marked
// unavailable. Source callbacks themselves must only read lock-free
// structures or try_lock-guarded caches — never hop to an event loop.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"

namespace clash::obs {

struct Hub;

class Postmortem {
 public:
  /// The process-global instance (never destroyed — a crash during
  /// static teardown must still find it alive).
  static Postmortem& global();

  /// Directory dumps are written to; "" disables file output (render()
  /// still works). Typically a node's storage_dir.
  void set_dir(std::string dir);
  [[nodiscard]] std::string dir() const;

  /// Register a named source; `render` must return one JSON value and
  /// be callable from a crashing thread (lock-free reads only).
  /// Returns an id for remove_source.
  std::uint64_t add_source(std::string name,
                           std::function<std::string()> render);
  void remove_source(std::uint64_t id);

  /// Serialize all sources to a JSON document (no file I/O). The
  /// bounded try_lock spin is invisible to the thread-safety analysis;
  /// crash-context locking is hand-audited here.
  [[nodiscard]] std::string render(std::string_view reason)
      CLASH_NO_THREAD_SAFETY_ANALYSIS;

  /// Render and write `<dir>/postmortem-<ts>-<pid>-<n>.json`. Returns
  /// the path, or "" when no dir is set or the write failed.
  std::string dump(std::string_view reason)
      CLASH_NO_THREAD_SAFETY_ANALYSIS;

  /// Install SIGSEGV/SIGABRT/SIGBUS/SIGFPE/SIGILL handlers that dump
  /// then re-raise with the default disposition (the process still
  /// dies with the original signal; a parent / CI harness observes the
  /// real cause AND finds the dump). Idempotent.
  void install_crash_handler();

  /// Dumps attempted so far (successful file writes).
  [[nodiscard]] std::uint64_t dumps() const {
    return dumps_.load(std::memory_order_relaxed);
  }

 private:
  Postmortem() = default;

  struct Source {
    std::uint64_t id = 0;
    std::string name;
    std::function<std::string()> render;
  };

  mutable common::Mutex mu_;
  std::string dir_ CLASH_GUARDED_BY(mu_);
  std::vector<Source> sources_ CLASH_GUARDED_BY(mu_);
  std::uint64_t next_id_ CLASH_GUARDED_BY(mu_) = 1;
  std::atomic<std::uint64_t> dumps_{0};
  std::atomic<std::uint64_t> ordinal_{0};
};

/// Convenience: register `hub`'s flight ring + in-flight table as one
/// postmortem source (the shape sim substrates and benches need —
/// net::ClashNode registers a richer source of its own). `now_us`
/// supplies the clock the in-flight ages are judged against.
std::uint64_t register_hub_source(Postmortem& pm, Hub& hub,
                                  std::string name,
                                  std::function<std::int64_t()> now_us);

}  // namespace clash::obs
