// obs::Census: the cluster-wide cost census. Each node keeps a table of
// NodeCensusRecord — its own, refreshed on a cadence from a collector
// callback, plus the freshest record it has heard for every peer —
// and piggybacks a bounded batch on outgoing SWIM gossip frames, the
// same epidemic channel membership rumours ride. (incarnation, seq)
// totally orders records per node, so replays and stale relays lose
// deterministically; records for members the failure detector declared
// dead are dropped immediately, and records that stop refreshing age
// out after a TTL. view() folds the table into the ClusterView a
// placement policy (and the clash_cluster_* gauges) consumes.
//
// Threading: none. Census lives on its node's event-loop thread (or
// the simulator's single thread) like MembershipDriver; the stats
// endpoint reads view() via call_on_loop. That affinity is enforced:
// every member is CLASH_GUARDED_BY(affinity_) and every public method
// witnesses the token at entry, so net::ClashNode (which binds the
// token to its event loop) turns an off-loop call into an abort in
// CLASH_LOOP_CHECKS builds. Unbound (sim / unit tests), the witness
// checks nothing at runtime but still satisfies -Wthread-safety.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "clash/messages.hpp"
#include "common/affinity.hpp"
#include "common/thread_annotations.hpp"
#include "common/types.hpp"

namespace clash::obs {

struct CensusConfig {
  /// Top-K per-group cost entries a node publishes about itself.
  std::size_t top_k = 4;
  /// Refresh the local record every this many ticks (protocol periods).
  std::uint64_t refresh_periods = 4;
  /// Drop a peer record not refreshed for this many ticks. Must dwarf
  /// refresh_periods x dissemination latency or healthy peers flicker.
  std::uint64_t ttl_periods = 96;
  /// How many outgoing frames eagerly carry a record after it changes
  /// (epidemic push); afterwards it still rotates through frames
  /// round-robin as background anti-entropy.
  unsigned transmit_budget = 8;
};

/// The converged global view: one entry per known node plus cluster
/// totals and a merged per-group cost ranking.
struct ClusterView {
  struct Node {
    ServerId id{};
    std::uint64_t incarnation = 0;
    std::uint64_t seq = 0;
    double load = 0;
    std::uint32_t active_groups = 0;
    std::uint32_t replica_records = 0;
    std::uint64_t queries = 0;
    std::uint64_t streams = 0;
    GroupCost totals;
    /// Ticks since this record was installed or refreshed.
    std::uint64_t age_periods = 0;
  };

  std::vector<Node> nodes;  // sorted by id
  /// Union of all nodes' top-K lists, per-group costs summed across
  /// publishers, sorted by total_bytes() desc (ties: smaller group
  /// label first). Global ranking modulo each node's K truncation.
  std::vector<CensusGroupCost> top_groups;
  GroupCost totals;                  // sum over nodes[].totals
  double total_load = 0;
  std::uint64_t total_queries = 0;
  std::uint64_t total_streams = 0;
  std::uint64_t total_groups = 0;    // sum of active_groups
  std::uint64_t total_replicas = 0;  // sum of replica_records
  /// Staleness of the oldest record in the table — the /healthz
  /// census-freshness signal.
  std::uint64_t max_age_periods = 0;
};

class Census {
 public:
  /// Fills gauges + top-K groups of the local record. Census itself
  /// stamps node, incarnation, seq, and checksum.
  using Collector = std::function<void(NodeCensusRecord&)>;

  explicit Census(ServerId self, CensusConfig cfg = {})
      : self_(self), cfg_(cfg) {}

  /// The affinity capability guarding all census state; the embedding
  /// node binds it to its home-thread probe during setup.
  [[nodiscard]] common::AffinityToken& affinity()
      CLASH_RETURN_CAPABILITY(affinity_) {
    return affinity_;
  }

  void set_collector(Collector c) {
    affinity_.assert_held();
    collector_ = std::move(c);
  }
  [[nodiscard]] const CensusConfig& config() const { return cfg_; }

  /// Call once per protocol period (MembershipDriver::tick does).
  /// Ages and expires peer records; refreshes the local record from
  /// the collector on the refresh cadence (and on the first tick).
  void tick(std::uint64_t self_incarnation);

  /// Absorb a record received off the wire (already CRC-verified by
  /// the caller). Self-echoes and stale (incarnation, seq) lose;
  /// fresher records install with a full transmit budget.
  /// Returns true when the table changed.
  bool absorb(const NodeCensusRecord& rec);

  /// The failure detector declared `node` dead: drop its record now
  /// instead of waiting out the TTL. (A revived node re-enters with a
  /// higher incarnation.)
  void forget(ServerId node);

  /// Up to `max` records for one outgoing gossip frame: changed
  /// records with transmit budget left first, then round-robin over
  /// the rest so even quiescent tables keep reconciling after heals.
  [[nodiscard]] std::vector<NodeCensusRecord> pick_records(
      std::size_t max);

  /// Fold the table into the global view.
  [[nodiscard]] ClusterView view() const;

  [[nodiscard]] std::size_t table_size() const {
    affinity_.assert_held();
    return table_.size();
  }
  [[nodiscard]] const NodeCensusRecord* record_of(ServerId node) const;

  // Counters (scraped as census_* metrics by the embedding node).
  [[nodiscard]] std::uint64_t stale_rejected() const {
    affinity_.assert_held();
    return stale_rejected_;
  }
  [[nodiscard]] std::uint64_t crc_rejected() const {
    affinity_.assert_held();
    return crc_rejected_;
  }
  [[nodiscard]] std::uint64_t absorbed() const {
    affinity_.assert_held();
    return absorbed_;
  }
  /// Caller-side tally for records that failed the CRC fence (the
  /// fence itself lives in the membership driver, which has the frame).
  void count_crc_reject() {
    affinity_.assert_held();
    ++crc_rejected_;
  }

 private:
  struct Slot {
    NodeCensusRecord rec;
    std::uint64_t age_periods = 0;
    unsigned transmits_left = 0;
  };

  void refresh_local(std::uint64_t self_incarnation)
      CLASH_REQUIRES(affinity_);

  common::AffinityToken affinity_;
  ServerId self_;
  CensusConfig cfg_;
  Collector collector_ CLASH_GUARDED_BY(affinity_);
  std::map<std::uint64_t, Slot> table_
      CLASH_GUARDED_BY(affinity_);  // keyed by ServerId::value
  std::uint64_t ticks_ CLASH_GUARDED_BY(affinity_) = 0;
  std::uint64_t next_seq_ CLASH_GUARDED_BY(affinity_) = 0;
  /// Round-robin cursor for pick_records; starts past every id so the
  /// first backfill scan begins at the smallest key.
  std::uint64_t rotor_ CLASH_GUARDED_BY(affinity_) = ServerId::kInvalid;
  std::uint64_t stale_rejected_ CLASH_GUARDED_BY(affinity_) = 0;
  std::uint64_t crc_rejected_ CLASH_GUARDED_BY(affinity_) = 0;
  std::uint64_t absorbed_ CLASH_GUARDED_BY(affinity_) = 0;
};

}  // namespace clash::obs
