#include "obs/registry.hpp"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <thread>

namespace clash::obs {

namespace detail {

std::size_t CounterCell::my_stripe() {
  // Thread ids are opaque; hash them onto a stripe once per thread.
  return std::hash<std::thread::id>{}(std::this_thread::get_id()) %
         kStripes;
}

}  // namespace detail

Counter Registry::counter(std::string_view name) {
  const common::MutexLock lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_
             .emplace(std::string(name),
                      std::make_unique<detail::CounterCell>())
             .first;
  }
  return Counter(it->second.get());
}

Gauge Registry::gauge(std::string_view name) {
  const common::MutexLock lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_
             .emplace(std::string(name),
                      std::make_unique<detail::GaugeCell>())
             .first;
  }
  return Gauge(it->second.get());
}

HistogramHandle Registry::histogram(std::string_view name) {
  const common::MutexLock lock(mu_);
  auto it = hists_.find(name);
  if (it == hists_.end()) {
    it = hists_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return HistogramHandle(it->second.get());
}

void Registry::gauge_callback(std::string_view name,
                              std::function<double()> fn) {
  const common::MutexLock lock(mu_);
  callbacks_[std::string(name)] = std::move(fn);
}

std::vector<Registry::MetricValue> Registry::scrape() const {
  const common::MutexLock lock(mu_);
  std::vector<MetricValue> out;
  out.reserve(counters_.size() + gauges_.size() + callbacks_.size() +
              hists_.size());
  for (const auto& [name, cell] : counters_) {
    MetricValue m;
    m.name = name;
    m.kind = MetricValue::Kind::kCounter;
    m.value = double(cell->value());
    out.push_back(std::move(m));
  }
  for (const auto& [name, cell] : gauges_) {
    MetricValue m;
    m.name = name;
    m.kind = MetricValue::Kind::kGauge;
    m.value = double(cell->v.load(std::memory_order_relaxed));
    out.push_back(std::move(m));
  }
  for (const auto& [name, fn] : callbacks_) {
    MetricValue m;
    m.name = name;
    m.kind = MetricValue::Kind::kGauge;
    m.value = fn();
    out.push_back(std::move(m));
  }
  for (const auto& [name, h] : hists_) {
    MetricValue m;
    m.name = name;
    m.kind = MetricValue::Kind::kHistogram;
    m.hist = h->snapshot();
    out.push_back(std::move(m));
  }
  std::sort(out.begin(), out.end(),
            [](const MetricValue& a, const MetricValue& b) {
              return a.name < b.name;
            });
  return out;
}

namespace {

std::string fmt_double(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRId64, std::int64_t(v));
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

std::string Registry::render_text() const {
  auto metrics = scrape();
  std::string out;
  out.reserve(metrics.size() * 64);
  for (const auto& m : metrics) {
    switch (m.kind) {
      case MetricValue::Kind::kCounter:
        out += "# TYPE " + m.name + " counter\n";
        out += m.name + " " + fmt_double(m.value) + "\n";
        break;
      case MetricValue::Kind::kGauge:
        out += "# TYPE " + m.name + " gauge\n";
        out += m.name + " " + fmt_double(m.value) + "\n";
        break;
      case MetricValue::Kind::kHistogram: {
        out += "# TYPE " + m.name + " summary\n";
        const auto& h = m.hist;
        for (double q : {0.5, 0.9, 0.99, 0.999}) {
          out += m.name + "{quantile=\"" + fmt_double(q) + "\"} " +
                 fmt_double(h.percentile(q * 100.0)) + "\n";
        }
        out += m.name + "_sum " + fmt_double(double(h.sum)) + "\n";
        out += m.name + "_count " + fmt_double(double(h.count)) + "\n";
        break;
      }
    }
  }
  return out;
}

std::string Registry::render_json(int indent) const {
  auto metrics = scrape();
  const std::string pad(std::size_t(indent), ' ');
  const std::string pad2(std::size_t(indent) + 2, ' ');
  std::string out = "{";
  bool first = true;
  for (const auto& m : metrics) {
    if (!first) out += ",";
    first = false;
    out += "\n" + pad + "\"" + m.name + "\": ";
    if (m.kind == MetricValue::Kind::kHistogram) {
      const auto& h = m.hist;
      out += "{\n";
      out += pad2 + "\"count\": " + fmt_double(double(h.count)) + ",\n";
      out += pad2 + "\"min\": " + fmt_double(double(h.min)) + ",\n";
      out += pad2 + "\"max\": " + fmt_double(double(h.max)) + ",\n";
      out += pad2 + "\"mean\": " + fmt_double(h.mean()) + ",\n";
      out += pad2 + "\"p50\": " + fmt_double(h.percentile(50)) + ",\n";
      out += pad2 + "\"p90\": " + fmt_double(h.percentile(90)) + ",\n";
      out += pad2 + "\"p99\": " + fmt_double(h.percentile(99)) + ",\n";
      out += pad2 + "\"p999\": " + fmt_double(h.percentile(99.9)) + "\n";
      out += pad + "}";
    } else {
      out += fmt_double(m.value);
    }
  }
  out += "\n" + std::string(std::size_t(indent > 2 ? indent - 2 : 0), ' ') +
         "}";
  return out;
}

Histogram::Snapshot Registry::histogram_snapshot(
    std::string_view name) const {
  const common::MutexLock lock(mu_);
  auto it = hists_.find(name);
  if (it == hists_.end()) return {};
  return it->second->snapshot();
}

std::uint64_t Registry::counter_value(std::string_view name) const {
  const common::MutexLock lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) return 0;
  return it->second->value();
}

void Registry::reset() {
  const common::MutexLock lock(mu_);
  for (auto& [name, cell] : counters_) cell->reset();
  for (auto& [name, cell] : gauges_) {
    cell->v.store(0, std::memory_order_relaxed);
  }
  for (auto& [name, h] : hists_) h->reset();
}

}  // namespace clash::obs
