#include "obs/histogram.hpp"

#include <algorithm>

namespace clash::obs {

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot s;
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  std::uint64_t mn = min_.load(std::memory_order_relaxed);
  s.min = (mn == ~0ull) ? 0 : mn;
  s.max = max_.load(std::memory_order_relaxed);
  s.buckets.resize(kBuckets);
  for (std::size_t i = 0; i < kBuckets; ++i) {
    s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return s;
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(~0ull, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

void Histogram::Snapshot::merge(const Snapshot& o) {
  if (o.count == 0) return;
  if (count == 0) {
    *this = o;
    return;
  }
  count += o.count;
  sum += o.sum;
  min = std::min(min, o.min);
  max = std::max(max, o.max);
  if (buckets.empty()) buckets.resize(kBuckets);
  for (std::size_t i = 0; i < kBuckets && i < o.buckets.size(); ++i) {
    buckets[i] += o.buckets[i];
  }
}

double Histogram::Snapshot::percentile(double p) const {
  if (count == 0 || buckets.empty()) return 0;
  p = std::clamp(p, 0.0, 100.0);
  // Rank of the target observation, 1-based.
  double rank = p / 100.0 * double(count);
  if (rank < 1.0) rank = 1.0;
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) continue;
    std::uint64_t next = cum + buckets[i];
    if (double(next) >= rank) {
      double lo = double(bucket_lo(i));
      double hi = double(bucket_hi(i));
      double frac = (rank - double(cum)) / double(buckets[i]);
      double v = lo + (hi - lo) * frac;
      return std::clamp(v, double(min), double(max));
    }
    cum = next;
  }
  return double(max);
}

}  // namespace clash::obs
