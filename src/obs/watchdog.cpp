#include "obs/watchdog.hpp"

#include <chrono>

namespace clash::obs {

StallWatchdog::StallWatchdog(Config cfg, Hub& hub, std::uint32_t node)
    : cfg_(cfg),
      hub_(hub),
      node_(node),
      stall_ticks_c_(hub.registry.counter("clash_stall_ticks_total")),
      stall_ops_c_(hub.registry.counter("clash_stall_ops_total")) {}

StallWatchdog::~StallWatchdog() { stop(); }

void StallWatchdog::start() {
  if (!cfg_.enabled || running_.load(std::memory_order_relaxed)) return;
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { thread_main(); });
}

void StallWatchdog::stop() {
  running_.store(false, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
}

void StallWatchdog::thread_main() {
  // Sleep in small slices so stop() never waits a full poll interval.
  const auto slice = std::chrono::milliseconds(10);
  std::int64_t slept_us = 0;
  while (running_.load(std::memory_order_acquire)) {
    // Dedicated watchdog thread, never an event-loop path.
    std::this_thread::sleep_for(slice);  // lint:allow-blocking(own thread)
    slept_us += 10'000;
    if (slept_us < cfg_.poll_interval_us) continue;
    slept_us = 0;
    if (now_us_) poll_once(now_us_());
  }
}

std::size_t StallWatchdog::poll_once(std::int64_t now_us) {
  std::size_t fresh = 0;

  if (tick_probe_) {
    if (const auto tick = tick_probe_()) {
      const auto [seq, started_us] = *tick;
      const std::int64_t age = now_us - started_us;
      if (age >= cfg_.tick_budget_us && seq != last_stalled_tick_) {
        last_stalled_tick_ = seq;
        ++fresh;
        stall_ticks_.fetch_add(1, std::memory_order_relaxed);
        stall_ticks_c_.inc();
        hub_.flight.record(FlightKind::kStallTick, node_, now_us,
                           std::uint64_t(age), seq);
      }
    }
  }

  const auto stalled = hub_.inflight.stalled(now_us, cfg_.op_stall_us);
  std::set<std::uint64_t> live;
  for (const auto& op : stalled) {
    live.insert(op.token);
    if (stalled_tokens_.contains(op.token)) continue;
    ++fresh;
    stall_ops_.fetch_add(1, std::memory_order_relaxed);
    stall_ops_c_.inc();
    hub_.flight.record(FlightKind::kStallOp, node_, now_us, op.token,
                       std::uint64_t(now_us - op.last_progress_us));
  }
  // Forget tokens that ended or resumed so a relapse re-reports.
  stalled_tokens_ = std::move(live);

  if (fresh > 0) maybe_dump(now_us, "stall_watchdog");
  return fresh;
}

void StallWatchdog::maybe_dump(std::int64_t now_us, const char* reason) {
  if (!dump_hook_) return;
  if (dumped_once_ && now_us - last_dump_us_ < cfg_.dump_interval_us) return;
  dumped_once_ = true;
  last_dump_us_ = now_us;
  dump_hook_(reason);
}

}  // namespace clash::obs
