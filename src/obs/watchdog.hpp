// StallWatchdog: the liveness half of the postmortem plane. A node's
// event loop can wedge (a handler spinning, a blocking call that
// slipped past the lint) and an in-flight operation can silently stop
// progressing (peer wedged, pacing bug) — neither shows up in metrics
// until someone scrapes, and neither crashes, so the crash handler
// never fires. The watchdog polls from its own thread:
//   * tick stalls — the loop published a tick start and hasn't
//     finished it within the budget;
//   * op stalls — an InflightTable entry with no progress past the
//     threshold.
// Verdicts bump clash_stall_* counters, land in the flight ring, and
// (rate-limited) trigger a postmortem dump, so a wedged-but-alive node
// ships the same black box a crashed one does.
//
// poll_once(now_us) is the whole detection pass, exposed for
// deterministic tests; start() merely runs it on a cadence.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <set>
#include <thread>
#include <utility>

#include "obs/hub.hpp"

namespace clash::obs {

class StallWatchdog {
 public:
  struct Config {
    bool enabled = true;
    /// Poll cadence of the watchdog thread.
    std::int64_t poll_interval_us = 100'000;
    /// A tick older than this and still unfinished is a stall.
    std::int64_t tick_budget_us = 1'000'000;
    /// An in-flight op with no progress for this long is a stall.
    std::int64_t op_stall_us = 5'000'000;
    /// Minimum spacing between stall-triggered dumps.
    std::int64_t dump_interval_us = 10'000'000;
  };

  /// Tick probe: returns {tick seq, start time in the watchdog's
  /// clock} while the loop is inside a tick, nullopt when idle.
  using TickProbe =
      std::function<std::optional<std::pair<std::uint64_t, std::int64_t>>()>;

  StallWatchdog(Config cfg, Hub& hub, std::uint32_t node);
  ~StallWatchdog();

  StallWatchdog(const StallWatchdog&) = delete;
  StallWatchdog& operator=(const StallWatchdog&) = delete;

  /// All setters must precede start().
  void set_tick_probe(TickProbe probe) { tick_probe_ = std::move(probe); }
  /// `now_us` supplies the clock poll verdicts are judged against
  /// (must match the clock InflightTable entries were stamped with).
  void set_clock(std::function<std::int64_t()> now_us) {
    now_us_ = std::move(now_us);
  }
  /// Called (rate-limited) when a new stall is detected.
  void set_dump_hook(std::function<void(const char* reason)> hook) {
    dump_hook_ = std::move(hook);
  }

  void start();
  void stop();

  /// One detection pass at `now_us`; returns the number of NEW stall
  /// verdicts (a stall already reported does not re-count).
  std::size_t poll_once(std::int64_t now_us);

  [[nodiscard]] std::uint64_t stall_ticks() const {
    return stall_ticks_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t stall_ops() const {
    return stall_ops_.load(std::memory_order_relaxed);
  }

 private:
  void thread_main();
  void maybe_dump(std::int64_t now_us, const char* reason);

  Config cfg_;
  Hub& hub_;
  std::uint32_t node_;
  TickProbe tick_probe_;
  std::function<std::int64_t()> now_us_;
  std::function<void(const char*)> dump_hook_;

  Counter stall_ticks_c_;
  Counter stall_ops_c_;

  // Dedup state, touched only by poll_once's caller (the watchdog
  // thread, or a test driving poll_once directly).
  std::uint64_t last_stalled_tick_ = 0;
  std::set<std::uint64_t> stalled_tokens_;
  std::int64_t last_dump_us_ = 0;
  bool dumped_once_ = false;

  std::atomic<std::uint64_t> stall_ticks_{0};
  std::atomic<std::uint64_t> stall_ops_{0};
  std::atomic<bool> running_{false};
  std::thread thread_;
};

}  // namespace clash::obs
