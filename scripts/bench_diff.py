#!/usr/bin/env python3
"""Compare two bench JSON artifacts and gate on regressions.

Usage:
  bench_diff.py --base BENCH_net.json --head fresh.json
                [--tolerance 0.15] [--strict]
                [--record trajectory.jsonl --label <sha-or-tag>]

Flattens both artifacts to path -> number (list entries are keyed by
their distinguishing field: frame_bytes, round, scenario — index
otherwise) and compares every metric present in BOTH files; keys the
older baseline schema lacks are reported as "new" and never gate, so a
freshly-grown bench section does not need a baseline bump to land.

Two gating tiers, because absolute frames/sec only means something when
base and head ran on the same machine:

  default  — gate only scale-free metrics (ratios, speedups, coalesce
             factors): machine-independent, so a committed baseline
             from any host is a valid reference;
  --strict — additionally gate absolute throughput (…_per_sec) and
             latency (…_us) metrics. For CI jobs that build base and
             head back-to-back on one runner.

A gated metric regressing by more than --tolerance (default 0.15 =
15%) fails the run. Direction is inferred from the metric name:
per_sec/ratio/speedup/ops higher-is-better; us/usec/latency/drops/
aborts/lost lower-is-better; anything else is informational only.

--record appends one JSON line (label, UTC time, flattened head
metrics) to a trajectory file, so the perf history of a branch is a
greppable log rather than a pile of artifacts.
"""

import argparse
import datetime
import json
import pathlib
import re
import sys

# A list entry is keyed by the first of these fields it carries.
LIST_KEYS = ("frame_bytes", "round", "scenario", "bench", "name")

HIGHER_BETTER = re.compile(r"(per_sec|ratio|speedup|ops_per|events_per)")
LOWER_BETTER = re.compile(
    r"(_us$|_usec$|latency|_drops$|_aborts$|_lost$|_failures$)"
)
SCALE_FREE = re.compile(r"(ratio|speedup|coalesce)")


def flatten(node, prefix="", out=None):
    if out is None:
        out = {}
    if isinstance(node, dict):
        for k, v in sorted(node.items()):
            flatten(v, f"{prefix}.{k}" if prefix else k, out)
    elif isinstance(node, list):
        for i, v in enumerate(node):
            key = str(i)
            if isinstance(v, dict):
                for lk in LIST_KEYS:
                    if lk in v:
                        key = f"{lk}={v[lk]}"
                        break
            flatten(v, f"{prefix}[{key}]", out)
    elif isinstance(node, (int, float)) and not isinstance(node, bool):
        out[prefix] = float(node)
    return out


def direction(path):
    leaf = path.rsplit(".", 1)[-1]
    if HIGHER_BETTER.search(leaf):
        return +1
    if LOWER_BETTER.search(leaf):
        return -1
    return 0


def gated(path, strict):
    d = direction(path)
    if d == 0:
        return False
    if SCALE_FREE.search(path):
        return True
    return strict


def compare(base, head, tolerance, strict):
    """Returns (failures, report_lines)."""
    failures = []
    lines = []
    for path in sorted(set(base) | set(head)):
        if path not in head:
            lines.append(f"  gone   {path} (base={base[path]:g})")
            continue
        if path not in base:
            lines.append(f"  new    {path} = {head[path]:g}")
            continue
        b, h = base[path], head[path]
        d = direction(path)
        if b == 0:
            delta = 0.0 if h == 0 else float("inf")
        else:
            delta = (h - b) / abs(b)
        marker = " "
        is_gated = gated(path, strict)
        regressed = (d > 0 and delta < -tolerance) or (
            d < 0 and delta > tolerance
        )
        if is_gated and regressed:
            failures.append(
                f"{path}: {b:g} -> {h:g} ({delta:+.1%}, tolerance "
                f"±{tolerance:.0%})"
            )
            marker = "!"
        elif regressed:
            marker = "~"  # informational regression, not gated
        lines.append(
            f"  {marker} {'gate' if is_gated else 'info':4} {path}: "
            f"{b:g} -> {h:g} ({delta:+.1%})"
        )
    return failures, lines


def record(path, label, head_raw, head_flat):
    entry = {
        "label": label,
        "utc": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
        "bench": head_raw.get("bench", "?"),
        "metrics": head_flat,
    }
    with open(path, "a", encoding="utf-8") as f:
        f.write(json.dumps(entry, sort_keys=True) + "\n")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--base", required=True)
    ap.add_argument("--head", required=True)
    ap.add_argument("--tolerance", type=float, default=0.15)
    ap.add_argument("--strict", action="store_true",
                    help="also gate absolute throughput/latency metrics")
    ap.add_argument("--record", help="append head metrics to this JSONL")
    ap.add_argument("--label", default="local",
                    help="label for --record entries (commit sha, tag)")
    args = ap.parse_args()

    base_raw = json.loads(pathlib.Path(args.base).read_text())
    head_raw = json.loads(pathlib.Path(args.head).read_text())
    base = flatten(base_raw)
    head = flatten(head_raw)

    failures, lines = compare(base, head, args.tolerance, args.strict)
    print(f"bench_diff: {args.base} -> {args.head} "
          f"({'strict' if args.strict else 'scale-free'} gate, "
          f"tolerance ±{args.tolerance:.0%})")
    for line in lines:
        print(line)

    if args.record:
        record(args.record, args.label, head_raw, head)
        print(f"bench_diff: recorded '{args.label}' -> {args.record}")

    if failures:
        print(f"bench_diff: {len(failures)} regression(s):",
              file=sys.stderr)
        for f in failures:
            print(f"  FAIL {f}", file=sys.stderr)
        return 1
    print("bench_diff: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
