#!/usr/bin/env python3
"""Reject eager log formatting on net/repl tick paths.

CLASH_LOG and friends are lazy by construction: the statement expands
to `if (!enabled(lvl)) {} else Statement(lvl) << args`, so the argument
chain — to_string calls, label() renders, stream conversions — is never
evaluated when the level is off, and enabled() itself is an inline
relaxed load. That guarantee only holds if hot-path code actually goes
through the macros. This check scans src/net and src/repl (code that
runs on every dispatch tick or replication round) for the ways the
guarantee gets bypassed:

  * direct stdio (printf/fprintf/puts) or iostream (std::cout/cerr)
    emission — formats unconditionally AND blocks on the write;
  * direct use of log::detail::Statement or log::detail::emit —
    formats before any level check;
  * a formatted temporary built outside the macro and then streamed in
    (`std::string msg = ...; CLASH_DEBUG << msg;` pays the format cost
    even when debug is off). Heuristic: a local named *msg*/*log_* that
    is assigned from a formatting call and only consumed by a CLASH_
    statement is flagged via the detail::Statement rule when spelled
    directly; the named-temporary shape is left to review.

Suppressions: EXEMPT_FILES below with a one-line justification, or an
inline `lint:allow-log(<reason>)` comment on the offending line.
"""

import pathlib
import re
import sys

EAGER_PATTERNS = [
    (re.compile(r"\bf?printf\s*\("), "printf/fprintf"),
    (re.compile(r"\bputs\s*\("), "puts"),
    (re.compile(r"\bstd::cout\b"), "std::cout"),
    (re.compile(r"\bstd::cerr\b"), "std::cerr"),
    (re.compile(r"\bstd::clog\b"), "std::clog"),
    (re.compile(r"\bdetail::Statement\s*\("), "log::detail::Statement"),
    (re.compile(r"\bdetail::emit\s*\("), "log::detail::emit"),
]

# Tick-path directories: every line of src/net runs on an event loop;
# src/repl runs inside ClashServer handlers (one per delivered frame).
SCAN_DIRS = ["src/net", "src/repl"]

EXEMPT_FILES: set[str] = set()

ALLOW_MARKER = "lint:allow-log"


def scan_text(rel_path: str, text: str) -> list[str]:
    """Return one violation message per eager-formatting site found."""
    if rel_path in EXEMPT_FILES:
        return []
    violations = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if ALLOW_MARKER in line:
            continue
        code = line.split("//", 1)[0]
        for pattern, name in EAGER_PATTERNS:
            if pattern.search(code):
                violations.append(
                    f"{rel_path}:{lineno}: eager log formatting via "
                    f"`{name}` on a tick path (use the lazy CLASH_LOG "
                    f"macros, or mark the line "
                    f"`{ALLOW_MARKER}(<reason>)`)"
                )
    return violations


def scan_tree(root: pathlib.Path) -> list[str]:
    violations = []
    for scan_dir in SCAN_DIRS:
        base = root / scan_dir
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix not in (".cpp", ".hpp", ".h", ".cc"):
                continue
            rel = path.relative_to(root).as_posix()
            violations.extend(scan_text(rel, path.read_text()))
    return violations


def selftest() -> int:
    """The check must fire on seeded violations and stay quiet on the
    sanctioned lazy macros."""
    bad = (
        "void tick() {\n"
        "  std::fprintf(stderr, \"peer %s\", to_string(id).c_str());\n"
        "  std::cerr << state;\n"
        "  log::detail::emit(lvl, msg);\n"
        "}\n"
    )
    hits = scan_text("src/net/fake.cpp", bad)
    assert len(hits) == 3, f"expected 3 violations, got {hits}"

    allowed = (
        "void tick() {\n"
        "  std::fprintf(stderr, \"x\");  // lint:allow-log(fatal path)\n"
        "}\n"
    )
    assert scan_text("src/net/fake.cpp", allowed) == []

    clean = (
        "void tick() {\n"
        "  CLASH_DEBUG << \"peer \" << to_string(id) << \" state \"\n"
        "              << state;\n"
        "  CLASH_LOG(lvl) << expensive_render();\n"
        "}\n"
    )
    assert scan_text("src/net/fake.cpp", clean) == []

    # Prose in comments must not trip the patterns.
    comment = "// printing via printf( here would be eager\n"
    assert scan_text("src/net/fake.cpp", comment) == []
    print("check_log_lazy: selftest OK")
    return 0


def main() -> int:
    if "--selftest" in sys.argv:
        return selftest()
    root = pathlib.Path(__file__).resolve().parents[2]
    violations = scan_tree(root)
    for v in violations:
        print(v, file=sys.stderr)
    if violations:
        print(f"check_log_lazy: {len(violations)} violation(s)",
              file=sys.stderr)
        return 1
    print("check_log_lazy: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
