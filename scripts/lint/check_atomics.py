#!/usr/bin/env python3
"""Reject implicit-memory-order atomic operations in src/obs.

The observability layer is the one subsystem whose atomics are hit from
every thread (counters from the loop, scrapes from anywhere), so each
operation must state the ordering it actually needs: seq_cst-by-default
both hides the intent and costs fences on ARM. A counter bump is
`fetch_add(1, std::memory_order_relaxed)`; a published flag is
acquire/release. No bare `.load()` / `.store(x)` / `.fetch_add(x)`.

Scope is src/obs (plus src/net/event_loop.* which carries the
loop-state atomics the obs layer reads). Inline suppression:
`lint:allow-implicit-order(<reason>)` on the line.
"""

import pathlib
import re
import sys

ATOMIC_CALL_RE = re.compile(
    r"\.(fetch_add|fetch_sub|fetch_or|fetch_and|load|store|exchange)"
    r"\s*\("
)

SCAN_PATHS = [
    "src/obs",
    "src/net/event_loop.hpp",
    "src/net/event_loop.cpp",
]

ALLOW_MARKER = "lint:allow-implicit-order"


def call_args(text: str, open_paren: int) -> str:
    """The argument text of the call whose '(' is at open_paren."""
    depth = 0
    for i in range(open_paren, min(len(text), open_paren + 500)):
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                return text[open_paren + 1 : i]
    return text[open_paren + 1 :]


def scan_text(rel_path: str, text: str) -> list[str]:
    violations = []
    lines = text.splitlines()
    offsets = []
    pos = 0
    for line in lines:
        offsets.append(pos)
        pos += len(line) + 1
    for m in ATOMIC_CALL_RE.finditer(text):
        lineno = next(
            i + 1
            for i in range(len(offsets) - 1, -1, -1)
            if offsets[i] <= m.start()
        )
        line = lines[lineno - 1]
        if ALLOW_MARKER in line:
            continue
        # Ignore comments (prose mentioning .load( etc.).
        comment_at = line.find("//")
        if comment_at != -1 and (m.start() - offsets[lineno - 1]) > comment_at:
            continue
        args = call_args(text, m.end() - 1)
        if "memory_order" not in args:
            violations.append(
                f"{rel_path}:{lineno}: `{m.group(1)}` without an explicit "
                f"std::memory_order (state the ordering, or mark the line "
                f"`{ALLOW_MARKER}(<reason>)`)"
            )
    return violations


def scan_tree(root: pathlib.Path) -> list[str]:
    violations = []
    for entry in SCAN_PATHS:
        path = root / entry
        files = (
            sorted(p for p in path.rglob("*")
                   if p.suffix in (".cpp", ".hpp", ".h", ".cc"))
            if path.is_dir()
            else [path]
        )
        for f in files:
            if f.exists():
                rel = f.relative_to(root).as_posix()
                violations.extend(scan_text(rel, f.read_text()))
    return violations


def selftest() -> int:
    bad = (
        "void f() {\n"
        "  count_.fetch_add(1);\n"
        "  running_.store(true);\n"
        "  if (running_.load()) return;\n"
        "}\n"
    )
    hits = scan_text("src/obs/fake.hpp", bad)
    assert len(hits) == 3, f"expected 3 violations, got {hits}"

    good = (
        "void f() {\n"
        "  count_.fetch_add(1, std::memory_order_relaxed);\n"
        "  running_.store(true, std::memory_order_release);\n"
        "  if (running_.load(std::memory_order_acquire)) return;\n"
        "  // prose about .load() in a comment is fine\n"
        "  legacy_.load();  // lint:allow-implicit-order(selftest)\n"
        "}\n"
    )
    assert scan_text("src/obs/fake.hpp", good) == []

    multiline = (
        "void f() {\n"
        "  count_.fetch_add(\n"
        "      1, std::memory_order_relaxed);\n"
        "}\n"
    )
    assert scan_text("src/obs/fake.hpp", multiline) == []
    print("check_atomics: selftest OK")
    return 0


def main() -> int:
    if "--selftest" in sys.argv:
        return selftest()
    root = pathlib.Path(__file__).resolve().parents[2]
    violations = scan_tree(root)
    for v in violations:
        print(v, file=sys.stderr)
    if violations:
        print(f"check_atomics: {len(violations)} violation(s)",
              file=sys.stderr)
        return 1
    print("check_atomics: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
