#!/usr/bin/env bash
# clang-format gate: the tree must be byte-identical to what the
# repo's .clang-format produces. Runs --dry-run --Werror over every
# tracked C++ file; any diff fails the check.
#
# CLANG_FORMAT overrides the binary (CI pins a version there). When no
# clang-format is installed locally the check is skipped with a notice
# rather than failed — the CI gate is authoritative.
set -u

ROOT="$(cd "$(dirname "$0")/../.." && pwd)"
CLANG_FORMAT="${CLANG_FORMAT:-clang-format}"

if ! command -v "$CLANG_FORMAT" >/dev/null 2>&1; then
  echo "check_format: $CLANG_FORMAT not found; skipping (CI enforces)"
  exit 0
fi

cd "$ROOT"
FILES=$(git ls-files '*.cpp' '*.hpp' '*.h' '*.cc')
if [ -z "$FILES" ]; then
  echo "check_format: no C++ files tracked"
  exit 0
fi

# shellcheck disable=SC2086
if "$CLANG_FORMAT" --dry-run --Werror $FILES; then
  echo "check_format: OK"
else
  echo "check_format: formatting violations (run: $CLANG_FORMAT -i <files>)" >&2
  exit 1
fi
