#!/usr/bin/env bash
# clang-tidy over the whole library, driven off the compilation
# database (CMAKE_EXPORT_COMPILE_COMMANDS is ON in the root
# CMakeLists). The check set and its documented suppressions live in
# the repo-root .clang-tidy.
#
# Usage: run_clang_tidy.sh [build-dir]   (default: build)
# CLANG_TIDY overrides the binary.
set -u

ROOT="$(cd "$(dirname "$0")/../.." && pwd)"
BUILD_DIR="${1:-$ROOT/build}"
CLANG_TIDY="${CLANG_TIDY:-clang-tidy}"

if ! command -v "$CLANG_TIDY" >/dev/null 2>&1; then
  echo "run_clang_tidy: $CLANG_TIDY not found; skipping (CI enforces)"
  exit 0
fi
if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  echo "run_clang_tidy: $BUILD_DIR/compile_commands.json missing" >&2
  echo "  (configure with: cmake -B \"$BUILD_DIR\" -S \"$ROOT\")" >&2
  exit 1
fi

cd "$ROOT"
FILES=$(git ls-files 'src/*.cpp')
JOBS=$(nproc 2>/dev/null || echo 4)

echo "run_clang_tidy: $(echo "$FILES" | wc -w) files, $JOBS jobs"
# shellcheck disable=SC2086
if echo $FILES | xargs -n 4 -P "$JOBS" \
    "$CLANG_TIDY" -p "$BUILD_DIR" --quiet --warnings-as-errors='*'; then
  echo "run_clang_tidy: OK"
else
  echo "run_clang_tidy: violations found" >&2
  exit 1
fi
