#!/usr/bin/env python3
"""Every wire MsgType enumerator must be dispatched and fuzz-covered.

A new wire message that encodes but never decodes (or vice versa) is a
silent protocol hole; one that decodes but is never fuzzed is a crash
waiting for the corrupt fault mode. This check parses the MsgType enum
from src/wire/codec.hpp and requires each enumerator to

  1. appear at least twice in src/wire/codec.cpp — once on the encode
     side (`w.u8(std::uint8_t(MsgType::kX))`) and once in the decode
     dispatch (`case MsgType::kX:`), and
  2. have its payload struct (the enumerator name minus the leading
     `k`) exercised in tests/wire/codec_fuzz_test.cpp's representative
     corpus.
"""

import pathlib
import re
import sys

ENUM_RE = re.compile(
    r"enum\s+class\s+MsgType[^{]*\{(?P<body>.*?)\}", re.DOTALL
)
ENUMERATOR_RE = re.compile(r"^\s*(k\w+)\s*=", re.MULTILINE)


def parse_enumerators(codec_hpp: str) -> list[str]:
    m = ENUM_RE.search(codec_hpp)
    if m is None:
        raise RuntimeError("MsgType enum not found in codec.hpp")
    return ENUMERATOR_RE.findall(m.group("body"))


def check(codec_hpp: str, codec_cpp: str, fuzz_cpp: str) -> list[str]:
    violations = []
    enumerators = parse_enumerators(codec_hpp)
    if not enumerators:
        return ["no MsgType enumerators parsed from codec.hpp"]
    for name in enumerators:
        dispatch_uses = len(
            re.findall(rf"MsgType::{name}\b", codec_cpp)
        )
        if dispatch_uses < 2:
            violations.append(
                f"MsgType::{name}: {dispatch_uses} use(s) in codec.cpp "
                f"(need encode + decode dispatch)"
            )
        struct_name = name[1:]  # kAcceptObject -> AcceptObject
        if not re.search(rf"\b{struct_name}\b", fuzz_cpp):
            violations.append(
                f"MsgType::{name}: payload struct {struct_name} missing "
                f"from tests/wire/codec_fuzz_test.cpp's representative "
                f"corpus"
            )
    return violations


def selftest() -> int:
    """Seed an unregistered enumerator; the check must flag both the
    missing dispatch and the missing fuzz coverage."""
    hpp = """
    enum class MsgType : std::uint8_t {
      kPing = 1,
      kBogusUnregistered = 2,
    };
    """
    cpp = """
    w.u8(std::uint8_t(MsgType::kPing));
    case MsgType::kPing: { break; }
    """
    fuzz = "all.emplace_back(Ping{});"
    hits = check(hpp, cpp, fuzz)
    assert len(hits) == 2, f"expected 2 violations, got {hits}"
    assert any("kBogusUnregistered" in h and "codec.cpp" in h
               for h in hits)
    assert any("BogusUnregistered" in h and "corpus" in h for h in hits)

    # Encode-only (one mention) must also be flagged.
    cpp_encode_only = "w.u8(std::uint8_t(MsgType::kPing));"
    hits = check(
        "enum class MsgType : std::uint8_t { kPing = 1, };",
        cpp_encode_only,
        fuzz,
    )
    assert len(hits) == 1 and "need encode + decode" in hits[0], hits

    # Fully registered enumerator: quiet.
    assert check(
        "enum class MsgType : std::uint8_t { kPing = 1, };", cpp, fuzz
    ) == []
    print("check_msgtype: selftest OK")
    return 0


def main() -> int:
    if "--selftest" in sys.argv:
        return selftest()
    root = pathlib.Path(__file__).resolve().parents[2]
    violations = check(
        (root / "src/wire/codec.hpp").read_text(),
        (root / "src/wire/codec.cpp").read_text(),
        (root / "tests/wire/codec_fuzz_test.cpp").read_text(),
    )
    for v in violations:
        print(v, file=sys.stderr)
    if violations:
        print(f"check_msgtype: {len(violations)} violation(s)",
              file=sys.stderr)
        return 1
    print("check_msgtype: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
