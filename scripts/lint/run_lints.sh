#!/usr/bin/env bash
# Project lint suite: the custom checks every PR must pass.
#   - check_blocking:  no blocking syscalls on EventLoop tick paths
#   - check_msgtype:   every MsgType is dispatched and fuzz-covered
#   - check_atomics:   no implicit-memory-order atomics in src/obs
#   - check_log_lazy:  no eager log formatting on net/repl tick paths
#   - check_format:    clang-format --dry-run --Werror (skips when the
#                      binary is absent; CI enforces)
# clang-tidy runs separately (run_clang_tidy.sh needs a configured
# build tree).
set -u

HERE="$(cd "$(dirname "$0")" && pwd)"
PY="${PYTHON:-python3}"
FAILED=0

run() {
  echo "--- $*"
  if ! "$@"; then
    FAILED=1
  fi
}

run "$PY" "$HERE/check_blocking.py"
run "$PY" "$HERE/check_msgtype.py"
run "$PY" "$HERE/check_atomics.py"
run "$PY" "$HERE/check_log_lazy.py"
run bash "$HERE/check_format.sh"

if [ "$FAILED" -ne 0 ]; then
  echo "lint suite: FAILED" >&2
  exit 1
fi
echo "lint suite: all checks passed"
