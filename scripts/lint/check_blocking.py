#!/usr/bin/env python3
"""Reject blocking syscalls on EventLoop tick paths.

The net layer runs single-threaded on an epoll loop: one blocking call
(fsync, sleep, a blocking connect) stalls every peer, timer, and stats
client the node serves. Durable I/O belongs in src/storage (the WAL's
fsync runs there under an explicit policy); sleeping belongs nowhere.

Scans src/net, src/obs, and src/membership for calls to a blocking
primitive. Suppressions live in EXEMPT_FILES below with a one-line
justification each, or inline via a `lint:allow-blocking(<reason>)`
comment on the offending line.
"""

import pathlib
import re
import sys

# Each pattern must match a call site, not a name mention.
BLOCKING_PATTERNS = [
    (re.compile(r"\bfsync\s*\("), "fsync"),
    (re.compile(r"\bfdatasync\s*\("), "fdatasync"),
    (re.compile(r"(?<![_\w])sleep\s*\("), "sleep"),
    (re.compile(r"\busleep\s*\("), "usleep"),
    (re.compile(r"\bnanosleep\s*\("), "nanosleep"),
    (re.compile(r"\bsleep_for\s*\("), "std::this_thread::sleep_for"),
    (re.compile(r"\bsleep_until\s*\("), "std::this_thread::sleep_until"),
    (re.compile(r"\bsystem\s*\("), "system"),
    (re.compile(r"\bpopen\s*\("), "popen"),
    # The blocking connect variant; loop code must use connect_tcp_async.
    (re.compile(r"\bconnect_tcp\s*\((?!.*_async)"), "connect_tcp"),
]

# Directories whose code runs on (or is reachable from) the event loop.
SCAN_DIRS = ["src/net", "src/obs", "src/membership"]

# Suppression baseline: every entry carries its justification and is
# re-audited when this file changes. src/storage is not scanned at all —
# it is the sanctioned home of durable (blocking) I/O, driven by the
# loop under an explicit fsync policy.
EXEMPT_FILES = {
    # Deliberately synchronous operator/test client; runs on the
    # caller's thread, never on a node's event loop.
    "src/net/blocking_client.cpp",
    # Definition + declaration site of the blocking connect itself;
    # loop code is required to call connect_tcp_async instead.
    "src/net/socket.cpp",
    "src/net/socket.hpp",
}

ALLOW_MARKER = "lint:allow-blocking"


def scan_text(rel_path: str, text: str) -> list[str]:
    """Return one violation message per blocking call found."""
    if rel_path in EXEMPT_FILES:
        return []
    violations = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if ALLOW_MARKER in line:
            continue
        # Strip line comments so prose about fsync does not trip it.
        code = line.split("//", 1)[0]
        for pattern, name in BLOCKING_PATTERNS:
            if pattern.search(code):
                violations.append(
                    f"{rel_path}:{lineno}: blocking call `{name}` on an "
                    f"event-loop path (move it to src/storage or mark "
                    f"the line `{ALLOW_MARKER}(<reason>)`)"
                )
    return violations


def scan_tree(root: pathlib.Path) -> list[str]:
    violations = []
    for scan_dir in SCAN_DIRS:
        base = root / scan_dir
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix not in (".cpp", ".hpp", ".h", ".cc"):
                continue
            rel = path.relative_to(root).as_posix()
            violations.extend(scan_text(rel, path.read_text()))
    return violations


def selftest() -> int:
    """The check must fire on seeded violations and stay quiet on
    sanctioned constructs."""
    bad = "void tick() {\n  ::fsync(fd_);\n  sleep(1);\n}\n"
    hits = scan_text("src/net/fake.cpp", bad)
    assert len(hits) == 2, f"expected 2 violations, got {hits}"

    allowed = "void tick() {\n  ::fsync(fd_);  // lint:allow-blocking(test)\n}\n"
    assert scan_text("src/net/fake.cpp", allowed) == []

    exempt = scan_text("src/net/blocking_client.cpp", bad)
    assert exempt == [], "exempt file must not report"

    clean = "void tick() {\n  connect_tcp_async(ep);\n  loop_.defer(fn);\n}\n"
    assert scan_text("src/net/fake.cpp", clean) == []
    print("check_blocking: selftest OK")
    return 0


def main() -> int:
    if "--selftest" in sys.argv:
        return selftest()
    root = pathlib.Path(__file__).resolve().parents[2]
    violations = scan_tree(root)
    for v in violations:
        print(v, file=sys.stderr)
    if violations:
        print(f"check_blocking: {len(violations)} violation(s)",
              file=sys.stderr)
        return 1
    print("check_blocking: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
