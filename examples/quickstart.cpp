// Quickstart: a CLASH cluster in one process.
//
// Builds a 16-server overlay, inserts data streams and a continuous
// query, shows a server's table (Figure 2 style), overloads one key
// region to watch binary splitting shed load, and resolves keys through
// the client's depth search.
#include <cstdio>

#include "clash/client.hpp"
#include "sim/cluster.hpp"

using namespace clash;

int main() {
  // 1. A 16-server cluster managing 24-bit hierarchical keys, bootstrap
  //    tree depth 6 (64 root key groups), 100 load-units per server.
  sim::SimCluster::Config cfg;
  cfg.num_servers = 16;
  cfg.clash.key_width = 24;
  cfg.clash.initial_depth = 6;
  cfg.clash.capacity = 100.0;
  sim::SimCluster cluster(cfg);
  cluster.bootstrap();
  std::printf("bootstrapped: %zu active key groups over %zu servers\n",
              cluster.owner_index().size(), cluster.num_servers());

  // 2. A client that inserts objects. The client guesses the key depth
  //    and converges via the INCORRECT_DEPTH binary search.
  ClashClient client(cluster.clash_config(), cluster.client_env(ServerId{0}),
                     cluster.hasher());

  AcceptObject stream;
  stream.key = Key(0xABCDEF, 24);
  stream.kind = ObjectKind::kData;
  stream.source = ClientId{1};
  stream.stream_rate = 5.0;  // packets/sec
  const auto out = client.insert(stream);
  std::printf("insert key=%s -> server %s at depth %u (%u probes, %u "
              "DHT hops)\n",
              stream.key.to_string().c_str(), to_string(out.server).c_str(),
              out.depth, out.probes, out.dht_hops);

  AcceptObject query;
  query.key = Key(0xABCD00, 24);
  query.kind = ObjectKind::kQuery;
  query.query_id = QueryId{7};
  (void)client.insert(query);

  // 3. Overload one region: 30 streams x 5 pkt/s = 150 units land in one
  //    depth-6 group (capacity is 100, overload threshold 90). The
  //    streams spread across the group, so splitting can shed them.
  for (int i = 0; i < 30; ++i) {
    AcceptObject s;
    s.key = Key(0xAB0000u + std::uint64_t(i) * 0x800u, 24);
    s.kind = ObjectKind::kData;
    s.source = ClientId{std::uint64_t(100 + i)};
    s.stream_rate = 5.0;
    (void)client.insert(s);
  }
  const ServerId hot = cluster.find_owner(Key(0xAB0000, 24)).value();
  std::printf("\nserver %s load before load check: %.0f / %.0f\n",
              to_string(hot).c_str(), cluster.server(hot).server_load(),
              cfg.clash.capacity);

  // 4. Periodic load checks run the CLASH protocol: the hottest group
  //    splits, the right child moves to whatever server the DHT picks.
  for (int round = 1; round <= 4; ++round) {
    cluster.set_now(SimTime::from_minutes(5 * round));
    cluster.run_all_load_checks();
  }
  const auto stats = cluster.total_stats();
  std::printf("after load checks: %llu splits, %llu group transfers, max "
              "load %.0f%%\n",
              (unsigned long long)stats.splits,
              (unsigned long long)stats.keygroup_transfers,
              cluster.snapshot().max_load_frac * 100);

  // 5. The hot server's table now shows lineage entries (Figure 2).
  std::printf("\nserver %s table:\n%s", to_string(hot).c_str(),
              cluster.server(hot).table().to_string().c_str());

  // 6. Clients re-resolve moved keys transparently.
  const auto again = client.resolve(Key(0xAB0000, 24));
  std::printf("re-resolve hot key -> server %s depth %u (%u probes)\n",
              to_string(again.server).c_str(), again.depth, again.probes);

  const auto err = cluster.check_invariants();
  std::printf("\ncluster invariants: %s\n", err ? err->c_str() : "OK");
  return err ? 1 : 0;
}
