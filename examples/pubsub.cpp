// Corporate pub/sub messaging: content-sensitive clustering in action.
// Topics are hierarchical (tenant / topic / subtopic) and packed into a
// 24-bit key by the AttributeEncoder, so one tenant's subscriptions
// share a key prefix. CLASH keeps each tenant on as few servers as load
// allows; a fine-grained basic DHT scatters the same subscriptions
// across the whole pool — the query-replication cost the paper's
// Section 1 motivates.
#include <cstdio>
#include <set>

#include "clash/client.hpp"
#include "common/rng.hpp"
#include "cq/query.hpp"
#include "keys/attribute_encoder.hpp"
#include "sim/cluster.hpp"

using namespace clash;

namespace {

std::unique_ptr<sim::SimCluster> make_cluster(bool clash_mode) {
  sim::SimCluster::Config cfg;
  cfg.num_servers = 48;
  cfg.clash.key_width = 24;
  cfg.clash.capacity = 500.0;
  if (clash_mode) {
    cfg.clash.initial_depth = 4;
  } else {
    // Basic DHT at full key granularity: every subtopic is hashed
    // independently (ephemeral groups, no adaptation).
    cfg.clash.initial_depth = 24;
    cfg.clash.overload_frac = 1e18;
    cfg.clash.underload_frac = 0;
    cfg.clash.ephemeral_groups = true;
    cfg.clash.enable_consolidation = false;
  }
  auto cluster = std::make_unique<sim::SimCluster>(cfg);
  if (clash_mode) cluster->bootstrap();
  return cluster;
}

}  // namespace

int main() {
  const auto enc =
      AttributeEncoder::create({{"tenant", 6}, {"topic", 8}, {"subtopic", 10}})
          .value();
  std::printf("topic space: %u-bit keys (tenant/topic/subtopic)\n",
              enc.key_width());

  Rng rng(99);
  // Tenant 13's messaging deployment: 120 subscriptions across 40
  // subtopics of 6 topics.
  std::vector<Key> sub_keys;
  for (int i = 0; i < 120; ++i) {
    const std::uint64_t vals[] = {13, rng.below(6), rng.below(40)};
    sub_keys.push_back(enc.encode(vals).value());
  }

  for (const bool clash_mode : {true, false}) {
    auto cluster = make_cluster(clash_mode);
    ClashClient client(cluster->clash_config(),
                       cluster->client_env(ServerId{0}), cluster->hasher());

    std::set<std::uint64_t> servers_used;
    unsigned total_probes = 0, total_hops = 0;
    std::uint64_t qid = 1;
    for (const Key& k : sub_keys) {
      if (!clash_mode) {
        cluster->ensure_group(KeyGroup::of(k, 24));
      }
      AcceptObject obj;
      obj.key = k;
      obj.kind = ObjectKind::kQuery;
      obj.query_id = QueryId{qid++};
      const auto out = client.insert(obj);
      servers_used.insert(out.server.value);
      total_probes += out.probes;
      total_hops += out.dht_hops;
    }
    std::printf(
        "%-10s tenant 13's 120 subscriptions -> %2zu servers "
        "(%u probes, %u DHT hops total)\n",
        clash_mode ? "CLASH:" : "DHT(24):", servers_used.size(), total_probes,
        total_hops);

    // A publisher pushing one message per subtopic must contact every
    // server hosting a matching subscription: fan-out == clustering.
    std::set<std::uint64_t> publish_fanout;
    for (const Key& k : sub_keys) {
      publish_fanout.insert(cluster->find_owner(k)->value);
    }
    std::printf("%-10s publish fan-out for tenant 13: %zu server contacts\n",
                clash_mode ? "CLASH:" : "DHT(24):", publish_fanout.size());
  }

  std::printf(
      "\n# clustering pay-off: CLASH co-locates a tenant's subscriptions "
      "(1-2 servers until load demands more); per-subtopic hashing "
      "scatters them across most of the pool\n");
  return 0;
}
