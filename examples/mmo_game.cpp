// Massively-multiplayer game (the paper's motivating application and
// its authors' "CLASH-based middleware for online games"): the virtual
// world is quad-tree partitioned; a live event pulls thousands of
// players into one zone, CLASH splits that zone across servers
// on demand, and when the event ends consolidation shrinks the server
// footprint back — the utility-computing story end to end.
#include <cstdio>
#include <memory>
#include <vector>

#include "clash/client.hpp"
#include "common/rng.hpp"
#include "keys/quadtree.hpp"
#include "sim/cluster.hpp"

using namespace clash;

namespace {

// Game-side state attached through the AppHooks API (the paper's
// "API that game servers use to indicate application overload and to
// distribute application-specific state"): an opaque payload per zone
// that CLASH ships whenever it moves a zone between servers.
class ZoneApp final : public AppHooks {
 public:
  std::vector<std::uint8_t> export_state(const KeyGroup& group,
                                         ServerId) override {
    ++exports;
    // A real game would serialise NPCs/loot here; the label suffices to
    // prove round-tripping.
    const auto label = group.label();
    return {label.begin(), label.end()};
  }

  void import_state(const KeyGroup&,
                    const std::vector<std::uint8_t>& state) override {
    ++imports;
    bytes_in += state.size();
  }

  int exports = 0;
  int imports = 0;
  std::size_t bytes_in = 0;
};

void report(const sim::SimCluster& cluster, const char* phase) {
  const auto snap = cluster.snapshot();
  const auto stats = cluster.total_stats();
  std::printf("%-18s servers=%3zu groups=%3zu max_load=%5.0f%% depth<=%2u "
              "splits=%3llu merges=%3llu\n",
              phase, snap.active_servers, snap.active_groups,
              snap.max_load_frac * 100, snap.max_depth,
              (unsigned long long)stats.splits,
              (unsigned long long)stats.merges);
}

}  // namespace

int main() {
  const QuadTreeEncoder world(12);

  sim::SimCluster::Config cfg;
  cfg.num_servers = 64;
  cfg.clash.key_width = 24;
  cfg.clash.initial_depth = 4;  // 16 world zones at start
  cfg.clash.capacity = 150.0;
  sim::SimCluster cluster(cfg);
  cluster.bootstrap();

  // Attach the game's state-distribution hooks to every server.
  std::vector<std::unique_ptr<ZoneApp>> apps;
  for (std::size_t i = 0; i < cfg.num_servers; ++i) {
    apps.push_back(std::make_unique<ZoneApp>());
    cluster.server(ServerId{i}).set_app_hooks(apps.back().get());
  }

  ClashClient client(cluster.clash_config(), cluster.client_env(ServerId{0}),
                     cluster.hasher());
  Rng rng(7);

  // 900 players spread across the world (1 update/sec each).
  std::vector<std::pair<ClientId, Key>> players;
  for (std::uint64_t i = 0; i < 900; ++i) {
    const Key pos = world.encode(rng.uniform01(), rng.uniform01());
    AcceptObject obj;
    obj.key = pos;
    obj.kind = ObjectKind::kData;
    obj.source = ClientId{i};
    obj.stream_rate = 1.0;
    (void)client.insert(obj);
    players.emplace_back(ClientId{i}, pos);
  }
  for (int r = 1; r <= 4; ++r) {
    cluster.set_now(SimTime::from_minutes(5 * r));
    cluster.run_all_load_checks();
  }
  report(cluster, "steady world");

  // The event: 80 % of players teleport into the arena (one tiny cell).
  std::printf("\n>> a world boss spawns at (0.30, 0.70): players converge\n");
  for (auto& [id, key] : players) {
    if (!rng.bernoulli(0.8)) continue;
    cluster.withdraw_stream(id, key);
    const Key arena = world.encode(0.30 + 0.02 * rng.uniform01(),
                                   0.70 + 0.02 * rng.uniform01());
    AcceptObject obj;
    obj.key = arena;
    obj.kind = ObjectKind::kData;
    obj.source = id;
    obj.stream_rate = 1.0;
    (void)client.insert(obj);
    key = arena;
  }
  // The game engine notices the pile-up before the next periodic load
  // check and sheds proactively (the application-overload API).
  const Key arena_key = world.encode(0.31, 0.71);
  const auto arena_owner = cluster.find_owner(arena_key).value();
  if (cluster.server(arena_owner).signal_overload()) {
    std::printf("game signalled overload at %s: zone shed ahead of the "
                "periodic check\n",
                to_string(arena_owner).c_str());
  }

  for (int r = 5; r <= 14; ++r) {
    cluster.set_now(SimTime::from_minutes(5 * r));
    cluster.run_all_load_checks();
  }
  report(cluster, "during event");

  int exports = 0, imports = 0;
  std::size_t bytes = 0;
  for (const auto& app : apps) {
    exports += app->exports;
    imports += app->imports;
    bytes += app->bytes_in;
  }
  std::printf("zone state distributed by CLASH: %d exports, %d imports, "
              "%zu bytes shipped\n",
              exports, imports, bytes);
  const Key arena_center = world.encode(0.31, 0.71);
  std::printf("arena zone is now %s (depth %u) — split %u levels below "
              "the 4-level zoning\n",
              cluster.find_active_group(arena_center)->label().c_str(),
              cluster.find_active_group(arena_center)->depth(),
              cluster.find_active_group(arena_center)->depth() - 4);

  // Event over: players scatter; consolidation reclaims the arena.
  std::printf("\n>> the boss despawns: players scatter\n");
  for (auto& [id, key] : players) {
    cluster.withdraw_stream(id, key);
    const Key pos = world.encode(rng.uniform01(), rng.uniform01());
    AcceptObject obj;
    obj.key = pos;
    obj.kind = ObjectKind::kData;
    obj.source = id;
    obj.stream_rate = 1.0;
    (void)client.insert(obj);
    key = pos;
  }
  for (int r = 15; r <= 40; ++r) {
    cluster.set_now(SimTime::from_minutes(5 * r));
    cluster.run_all_load_checks();
  }
  report(cluster, "after event");

  const auto err = cluster.check_invariants();
  std::printf("\ncluster invariants: %s\n", err ? err->c_str() : "OK");
  return err ? 1 : 0;
}
