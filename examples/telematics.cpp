// Telematics (Mobiscope-style): continuous spatial queries over moving
// vehicles. Vehicle positions are quad-tree encoded into 24-bit CLASH
// keys, so spatially close vehicles share key prefixes and cluster on
// servers; a downtown hotspot triggers binary splitting while rural
// regions stay consolidated.
#include <cstdio>
#include <map>
#include <vector>

#include "clash/client.hpp"
#include "common/rng.hpp"
#include "cq/stream_engine.hpp"
#include "keys/quadtree.hpp"
#include "sim/cluster.hpp"

using namespace clash;

namespace {

struct Vehicle {
  ClientId id;
  double x, y;
  Key key{0, 24};
};

}  // namespace

int main() {
  const QuadTreeEncoder geo(12);  // 12 quad levels -> 24-bit keys

  sim::SimCluster::Config cfg;
  cfg.num_servers = 32;
  cfg.clash.key_width = geo.key_width();
  cfg.clash.initial_depth = 6;
  cfg.clash.capacity = 200.0;
  sim::SimCluster cluster(cfg);
  cluster.bootstrap();

  ClashClient client(cluster.clash_config(), cluster.client_env(ServerId{0}),
                     cluster.hasher());
  Rng rng(2024);

  // 600 vehicles: 70 % jammed downtown (a small square), 30 % rural.
  std::vector<Vehicle> fleet;
  for (std::uint64_t i = 0; i < 600; ++i) {
    Vehicle v;
    v.id = ClientId{i};
    if (rng.bernoulli(0.7)) {
      v.x = 0.60 + 0.05 * rng.uniform01();  // downtown cell
      v.y = 0.40 + 0.05 * rng.uniform01();
    } else {
      v.x = rng.uniform01();
      v.y = rng.uniform01();
    }
    v.key = geo.encode(v.x, v.y);
    AcceptObject obj;
    obj.key = v.key;
    obj.kind = ObjectKind::kData;
    obj.source = v.id;
    obj.stream_rate = 1.0;  // one position report/sec
    (void)client.insert(obj);
    fleet.push_back(v);
  }

  std::printf("fleet registered: %zu vehicles, %zu active key groups\n",
              fleet.size(), cluster.owner_index().size());

  // Let CLASH adapt: the downtown group is ~420 units on one server.
  for (int round = 1; round <= 8; ++round) {
    cluster.set_now(SimTime::from_minutes(5 * round));
    cluster.run_all_load_checks();
  }
  const auto snap = cluster.snapshot();
  std::printf("after adaptation: max load %.0f%%, %zu loaded servers, "
              "depths %u..%u\n",
              snap.max_load_frac * 100, snap.active_servers, snap.min_depth,
              snap.max_depth);

  // Depth map: how finely is downtown split vs the countryside?
  const Key downtown = geo.encode(0.625, 0.425);
  const Key rural = geo.encode(0.1, 0.9);
  std::printf("downtown cell group: %s (depth %u)\n",
              cluster.find_active_group(downtown)->label().c_str(),
              cluster.find_active_group(downtown)->depth());
  std::printf("rural cell group:    %s (depth %u)\n",
              cluster.find_active_group(rural)->label().c_str(),
              cluster.find_active_group(rural)->depth());

  // Continuous spatial queries: "alert me for vehicles inside this
  // rectangle". A region is a key *range*, so the client resolves every
  // active group intersecting the scope (the paper's range-query
  // extension) and registers the query on each segment's server; the
  // per-server StreamEngine evaluates incoming reports.
  std::map<std::uint64_t, cq::StreamEngine> engines;  // server -> engine
  const struct {
    const char* name;
    double x, y;
    unsigned depth;
  } regions[] = {
      {"downtown-8", 0.625, 0.425, 8},
      {"downtown-12", 0.61, 0.41, 12},
      {"rural-4", 0.1, 0.9, 4},
  };
  std::uint64_t qid = 1;
  for (const auto& r : regions) {
    const KeyGroup scope = KeyGroup::of(geo.encode(r.x, r.y), r.depth);
    const auto range = client.resolve_scope(scope);
    if (!range.ok) {
      std::printf("range resolution failed for %s\n", r.name);
      return 1;
    }
    for (const auto& [segment, server] : range.segments) {
      AcceptObject obj;
      obj.key = segment.virtual_key();
      obj.kind = ObjectKind::kQuery;
      obj.query_id = QueryId{qid};
      (void)client.insert(obj);
      auto [it, _] = engines.try_emplace(server.value, geo.key_width());
      it->second.register_query(
          cq::ContinuousQuery{QueryId{qid}, scope, {}});
      ++qid;
    }
    std::printf("query %-12s scope=%s -> %zu segment(s) on %zu server(s)\n",
                r.name, scope.label().c_str(), range.segments.size(),
                range.distinct_servers());
  }

  // Route one round of position reports and count matches.
  std::uint64_t matches = 0;
  for (const auto& v : fleet) {
    const auto owner = cluster.find_owner(v.key);
    const auto it = engines.find(owner->value);
    if (it == engines.end()) continue;
    matches += it->second.process(cq::Record{v.key, {}});
  }
  std::printf("one report round: %llu query matches fired\n",
              (unsigned long long)matches);

  const auto err = cluster.check_invariants();
  std::printf("cluster invariants: %s\n", err ? err->c_str() : "OK");
  return err ? 1 : 0;
}
