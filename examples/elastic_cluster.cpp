// Elastic cluster demo: watch SWIM membership drive the ring through a
// kill / failover / revive cycle. Prints a timeline of suspicion,
// death declarations, ring changes, and replica promotions.
//
// Usage: example_elastic_cluster [--servers=16] [--streams=48]
#include <cstdio>

#include "clash/client.hpp"
#include "common/argparse.hpp"
#include "common/rng.hpp"
#include "sim/churn.hpp"

using namespace clash;
using namespace clash::sim;

namespace {

void report(ChurnSim& sim, const char* phase) {
  const auto& cluster = sim.cluster();
  const auto stats = cluster.total_stats();
  std::printf("[t=%7.1fs] %-28s alive=%zu ring=%zu failovers=%llu "
              "lost=%llu gossip=%llu\n",
              sim.events().now().seconds(), phase, cluster.alive_count(),
              cluster.ring().server_count(),
              (unsigned long long)stats.failovers,
              (unsigned long long)stats.groups_lost,
              (unsigned long long)stats.gossip_msgs);
}

}  // namespace

int main(int argc, char** argv) {
  const ArgParser args(argc, argv);
  const auto n_servers = std::size_t(args.get_int("servers", 16));
  const auto n_streams = std::size_t(args.get_int("streams", 48));

  ChurnSim::Config cfg;
  cfg.cluster.num_servers = n_servers;
  cfg.cluster.clash.key_width = 12;
  cfg.cluster.clash.initial_depth = 3;
  cfg.cluster.clash.capacity = 5000;
  cfg.cluster.clash.replication_factor = 2;
  ChurnSim sim(cfg);
  sim.start();

  ClashClient client(sim.cluster().clash_config(),
                     sim.cluster().client_env(ServerId{0}),
                     sim.cluster().hasher());
  Rng rng(11);
  for (std::size_t i = 0; i < n_streams; ++i) {
    AcceptObject obj;
    obj.key = Key(rng.next() & 0xFFF, 12);
    obj.kind = ObjectKind::kData;
    obj.source = ClientId{i};
    obj.stream_rate = 2;
    if (!client.insert(obj).ok) return 1;
  }
  report(sim, "bootstrap + streams");

  sim.run_for(SimTime::from_minutes(11));
  report(sim, "replicas formed");

  // Kill a server that actually owns groups, so the failover shows up.
  const ServerId victim =
      sim.cluster().find_owner(Key(rng.next() & 0xFFF, 12)).value();
  sim.kill(victim);
  std::printf("           >>> killing %s\n", to_string(victim).c_str());
  for (int period = 1; period <= 40; ++period) {
    sim.run_for(sim.protocol_period());
    if (sim.all_survivors_see_dead(victim) && sim.ring_matches_membership()) {
      std::printf("           >>> declared dead by all survivors after "
                  "%d protocol periods\n",
                  period);
      break;
    }
  }
  report(sim, "after detection + failover");

  sim.revive(victim);
  std::printf("           >>> reviving %s\n", to_string(victim).c_str());
  for (int period = 1; period <= 40; ++period) {
    sim.run_for(sim.protocol_period());
    if (sim.all_survivors_see_alive(victim) &&
        sim.cluster().ring().contains(victim)) {
      std::printf("           >>> re-admitted to the ring after %d "
                  "protocol periods\n",
                  period);
      break;
    }
  }
  report(sim, "after rejoin");

  if (const auto err = sim.cluster().check_invariants()) {
    std::fprintf(stderr, "INVARIANT VIOLATION: %s\n", err->c_str());
    return 1;
  }
  std::printf("invariants hold; every stream still registered: %s\n",
              [&] {
                std::size_t total = 0;
                for (std::size_t i = 0; i < n_servers; ++i) {
                  if (sim.cluster().is_alive(ServerId{i})) {
                    total += sim.cluster().server(ServerId{i}).total_streams();
                  }
                }
                return total == n_streams ? "yes" : "NO";
              }());
  return 0;
}
