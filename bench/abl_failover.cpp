// Fault-tolerance ablation: replication factor x replication mode
// (snapshot-only lease vs operation log) vs state survival and cost.
// Loads a cluster with streams AND continuous queries over links with
// a real propagation delay, lets replicas form, then crashes 25% of
// the servers one at a time — each crash sits through a 2 s detection
// window before the survivors evict it, like a SWIM deployment —
// and measures how much state survives, what the steady-state
// replication traffic costs, and what the observability layer saw:
// commit latency (ReplAppend -> ReplAck) and failover-time
// (crash -> evict/promote) histograms plus the per-group Gray cost
// vector, all embedded in the JSON artifact.
//
// Usage: abl_failover [--servers=64] [--sources=4000] [--queries=800]
//                     [--seed=42] [--json=PATH] [--metrics-json]
//                     [--trace=PATH]   (Chrome trace of the log/x2 run)
#include <algorithm>
#include <cstdio>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "clash/client.hpp"
#include "common/argparse.hpp"
#include "common/rng.hpp"
#include "obs/expose.hpp"
#include "obs/hub.hpp"
#include "sim/cluster.hpp"
#include "tests/clash/test_util.hpp"

using namespace clash;
using namespace clash::sim;

namespace {

/// One-way link propagation delay: makes the commit round trip (and
/// therefore clash_repl_commit_usec) physically nonzero.
constexpr std::int64_t kLinkDelayUsec = 1500;
/// Crash -> eviction gap, standing in for SWIM's detection time.
constexpr std::int64_t kDetectWindowUsec = 2'000'000;

/// Minimal delay sink for a bare SimCluster: delayed deliveries park
/// in a deadline-ordered queue; run_all() drains it, advancing the
/// cluster clock to each deadline, until the message chains quiesce.
class DelayPump {
 public:
  explicit DelayPump(SimCluster& cluster) : cluster_(cluster) {
    cluster_.set_delay_sink(
        [this](SimDuration delay, std::function<void()> deliver) {
          queue_.emplace(cluster_.now() + delay, std::move(deliver));
        });
  }

  void run_all() {
    while (!queue_.empty()) {
      const auto it = queue_.begin();
      cluster_.set_now(it->first);
      auto deliver = std::move(it->second);
      queue_.erase(it);
      deliver();  // may enqueue further delayed messages
    }
  }

 private:
  SimCluster& cluster_;
  std::multimap<SimTime, std::function<void()>> queue_;
};

struct HistSummary {
  std::uint64_t count = 0;
  double p50 = 0;
  double p99 = 0;

  static HistSummary of(const char* name) {
    const auto snap =
        obs::Hub::global().registry.histogram_snapshot(name);
    HistSummary h;
    h.count = snap.count;
    if (snap.count > 0) {
      h.p50 = snap.percentile(50);
      h.p99 = snap.percentile(99);
    }
    return h;
  }
};

struct CostSummary {
  std::size_t groups = 0;
  GroupCost total;
  std::vector<std::pair<std::string, std::uint64_t>> top;  // label, bytes
};

struct RunResult {
  const char* mode;
  unsigned factor;
  std::uint64_t failovers;
  std::uint64_t lost;
  double streams_kept_pct;
  double queries_kept_pct;
  double repl_msgs_per_srv_sec;   // steady-state refresh traffic
  std::uint64_t snapshot_msgs;    // full-state messages in steady state
  std::uint64_t delta_msgs;       // incremental messages in steady state
  HistSummary commit_us;          // clash_repl_commit_usec
  HistSummary detect_us;          // clash_failover_detect_usec
  HistSummary recovery_us;        // clash_failover_recovery_usec
  CostSummary cost;
};

RunResult run_one(ClashConfig::ReplicationMode mode, unsigned factor,
                  std::size_t n_servers, std::size_t n_sources,
                  std::size_t n_queries, std::uint64_t seed,
                  const char* trace_path) {
  // Each configuration gets a clean slate of every clash_* series; the
  // per-run summaries below (and the --metrics-json section, which
  // reflects the final run) would otherwise mix configurations.
  obs::Hub::global().registry.reset();
  auto& tracer = obs::Hub::global().tracer;
  if (trace_path != nullptr) {
    tracer.clear();
    tracer.set_enabled(true);
  }

  SimCluster::Config cfg;
  cfg.num_servers = n_servers;
  cfg.seed = seed;
  cfg.clash.key_width = 24;
  cfg.clash.initial_depth = 6;
  cfg.clash.capacity = 1e9;  // isolate replication from splitting
  cfg.clash.replication_factor = factor;
  cfg.clash.replication_mode = mode;
  SimCluster cluster(cfg);
  cluster.bootstrap();

  DelayPump pump(cluster);
  LinkMatrix::Fault wire;
  wire.delay_usec = kLinkDelayUsec;
  cluster.links().set_default_fault(wire);

  ClashClient client(cluster.clash_config(), cluster.client_env(ServerId{0}),
                     cluster.hasher());
  Rng rng(seed);
  for (std::size_t i = 0; i < n_sources; ++i) {
    AcceptObject obj;
    obj.key = Key(rng.next() & 0xFFFFFF, 24);
    obj.kind = ObjectKind::kData;
    obj.source = ClientId{i};
    obj.stream_rate = 1;
    if (!client.insert(obj).ok) std::abort();
  }
  for (std::size_t i = 0; i < n_queries; ++i) {
    AcceptObject obj;
    obj.key = Key(rng.next() & 0xFFFFFF, 24);
    obj.kind = ObjectKind::kQuery;
    obj.query_id = QueryId{i};
    if (!client.insert(obj).ok) std::abort();
  }
  // Let every in-flight append land and ack before anything crashes:
  // the replicas must be caught up for the survival gate to be a
  // statement about replication, not about racing the wire.
  pump.run_all();

  // Steady state: the registrations above already replicated (log mode
  // streams each op; snapshot mode ships leases at the check). Measure
  // two quiet check periods of refresh traffic.
  cluster.set_now(SimTime::from_minutes(5));
  cluster.run_all_load_checks();
  pump.run_all();
  const auto before = cluster.total_stats();
  for (int round = 2; round <= 3; ++round) {
    cluster.set_now(SimTime::from_minutes(5 * round));
    cluster.run_all_load_checks();
    pump.run_all();
  }
  const auto steady = cluster.total_stats() - before;

  // Staged failures: each victim crashes, sits dead through the
  // detection window (clash_failover_detect_usec records it), then the
  // survivors evict it and the heirs promote.
  Rng crash_rng(seed + 1);
  for (std::size_t i = 0; i < n_servers / 4; ++i) {
    for (;;) {
      const ServerId victim{crash_rng.below(n_servers)};
      if (cluster.is_alive(victim)) {
        cluster.crash_server(victim);
        pump.run_all();  // in-flight frames to the corpse drop on arrival
        cluster.set_now(cluster.now() + SimDuration{kDetectWindowUsec});
        cluster.evict_server(victim);
        pump.run_all();  // recovery pulls + re-replication settle
        break;
      }
    }
  }

  std::size_t streams_kept = 0;
  std::size_t queries_kept = 0;
  for (std::size_t i = 0; i < n_servers; ++i) {
    if (!cluster.is_alive(ServerId{i})) continue;
    streams_kept += cluster.server(ServerId{i}).total_streams();
    queries_kept += cluster.server(ServerId{i}).total_queries();
  }
  if (const auto err = cluster.check_invariants()) {
    std::fprintf(stderr, "INVARIANT VIOLATION: %s\n", err->c_str());
    std::abort();
  }

  const auto total = cluster.total_stats();
  RunResult r{};
  r.mode = mode == ClashConfig::ReplicationMode::kLog ? "log" : "snapshot";
  r.factor = factor;
  r.failovers = total.failovers;
  r.lost = total.groups_lost;
  r.streams_kept_pct = 100.0 * double(streams_kept) / double(n_sources);
  r.queries_kept_pct =
      n_queries == 0 ? 100.0
                     : 100.0 * double(queries_kept) / double(n_queries);
  const std::uint64_t refresh =
      steady.replications + steady.replication_log_messages();
  r.repl_msgs_per_srv_sec =
      double(refresh) / 600.0 /* 2 periods */ / double(n_servers);
  r.snapshot_msgs = steady.replications + steady.snapshot_offers +
                    steady.snapshot_chunks;
  r.delta_msgs = steady.repl_appends + steady.repl_acks +
                 steady.anti_entropy_probes + steady.anti_entropy_diffs;

  r.commit_us = HistSummary::of("clash_repl_commit_usec");
  r.detect_us = HistSummary::of("clash_failover_detect_usec");
  r.recovery_us = HistSummary::of("clash_failover_recovery_usec");

  // Per-group Gray cost vector, merged across every server that ever
  // touched the group (a failed-over group has cost at the old owner
  // and its heir).
  std::map<KeyGroup, GroupCost> merged;
  for (std::size_t i = 0; i < n_servers; ++i) {
    for (const auto& [group, cost] : cluster.server(ServerId{i}).group_costs()) {
      merged[group] += cost;
    }
  }
  r.cost.groups = merged.size();
  for (const auto& [group, cost] : merged) r.cost.total += cost;
  std::vector<std::pair<std::string, std::uint64_t>> ranked;
  ranked.reserve(merged.size());
  for (const auto& [group, cost] : merged) {
    ranked.emplace_back(group.label(), cost.total_bytes());
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  if (ranked.size() > 3) ranked.resize(3);
  r.cost.top = std::move(ranked);

  if (trace_path != nullptr) {
    tracer.set_enabled(false);
    const std::string json = tracer.to_chrome_json();
    if (FILE* f = std::fopen(trace_path, "w"); f != nullptr) {
      std::fwrite(json.data(), 1, json.size(), f);
      std::fclose(f);
      // How many logical flows stitched across nodes: trace ids whose
      // spans landed on >= 2 distinct pids (ingest on the owner, apply
      // on a replica, snapshot legs on the heir, ...).
      std::map<std::uint64_t, std::set<std::uint64_t>> flows;
      for (const auto& span : tracer.spans()) {
        if (span.trace_id != 0) flows[span.trace_id].insert(span.pid);
      }
      std::size_t cross = 0;
      for (const auto& [id, pids] : flows) cross += pids.size() >= 2;
      std::printf("# trace: %llu spans (%llu overwritten), %zu/%zu flows "
                  "span >= 2 nodes -> %s\n",
                  (unsigned long long)tracer.spans().size(),
                  (unsigned long long)tracer.dropped(), cross, flows.size(),
                  trace_path);
    } else {
      std::fprintf(stderr, "cannot write trace to %s\n", trace_path);
    }
  }
  return r;
}

void append_hist_json(std::string& json, const char* key,
                      const HistSummary& h) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "\"%s\": {\"count\": %llu, \"p50_us\": %.1f, "
                "\"p99_us\": %.1f}",
                key, (unsigned long long)h.count, h.p50, h.p99);
  json += buf;
}

}  // namespace

int main(int argc, char** argv) {
  const ArgParser args(argc, argv);
  const auto n_servers = std::size_t(args.get_int("servers", 64));
  const auto n_sources = std::size_t(args.get_int("sources", 4000));
  const auto n_queries = std::size_t(args.get_int("queries", 800));
  const auto seed = std::uint64_t(args.get_int("seed", 42));
  const std::string trace_path = args.get("trace", "");

  std::printf("# Failover ablation: %zu servers, %zu streams, %zu queries, "
              "crash 25%% of the cluster (staged: %.1fs detection window, "
              "%lldus links)\n",
              n_servers, n_sources, n_queries,
              double(kDetectWindowUsec) / 1e6, (long long)kLinkDelayUsec);
  std::printf("%-9s %-8s %10s %6s %14s %14s %15s %13s %11s %12s %12s\n",
              "mode", "replicas", "failovers", "lost", "streams_kept_%",
              "queries_kept_%", "repl msg/s/srv", "snapshot_msgs",
              "delta_msgs", "commit_p99us", "detect_p50us");

  std::string json = "{\n  \"bench\": \"abl_failover\",\n  \"runs\": [\n";
  bool first = true;
  for (const auto mode : {ClashConfig::ReplicationMode::kSnapshot,
                          ClashConfig::ReplicationMode::kLog}) {
    for (const unsigned factor : {0u, 1u, 2u, 3u}) {
      // The trace follows the flagship configuration: log mode, x2.
      const bool traced = !trace_path.empty() &&
                          mode == ClashConfig::ReplicationMode::kLog &&
                          factor == 2;
      const RunResult r =
          run_one(mode, factor, n_servers, n_sources, n_queries, seed,
                  traced ? trace_path.c_str() : nullptr);
      std::printf("%-9s %-8u %10llu %6llu %14.1f %14.1f %15.3f %13llu "
                  "%11llu %12.0f %12.0f\n",
                  r.mode, r.factor, (unsigned long long)r.failovers,
                  (unsigned long long)r.lost, r.streams_kept_pct,
                  r.queries_kept_pct, r.repl_msgs_per_srv_sec,
                  (unsigned long long)r.snapshot_msgs,
                  (unsigned long long)r.delta_msgs, r.commit_us.p99,
                  r.detect_us.p50);
      char line[512];
      std::snprintf(
          line, sizeof(line),
          "    %s{\"mode\": \"%s\", \"factor\": %u, \"failovers\": %llu, "
          "\"groups_lost\": %llu, \"streams_kept_pct\": %.1f, "
          "\"queries_kept_pct\": %.1f, \"repl_msgs_per_srv_sec\": %.3f, "
          "\"snapshot_msgs\": %llu, \"delta_msgs\": %llu,\n     ",
          first ? "" : ",", r.mode, r.factor,
          (unsigned long long)r.failovers, (unsigned long long)r.lost,
          r.streams_kept_pct, r.queries_kept_pct, r.repl_msgs_per_srv_sec,
          (unsigned long long)r.snapshot_msgs,
          (unsigned long long)r.delta_msgs);
      json += line;
      append_hist_json(json, "commit_latency", r.commit_us);
      json += ",\n     ";
      append_hist_json(json, "failover_detect", r.detect_us);
      json += ",\n     ";
      append_hist_json(json, "failover_recovery", r.recovery_us);
      char cost[384];
      std::snprintf(
          cost, sizeof(cost),
          ",\n     \"group_cost\": {\"groups\": %zu, \"puts\": %llu, "
          "\"matches\": %llu, \"bytes_served\": %llu, \"repl_bytes\": %llu, "
          "\"storage_bytes\": %llu, \"top_groups\": [",
          r.cost.groups, (unsigned long long)r.cost.total.puts,
          (unsigned long long)r.cost.total.matches,
          (unsigned long long)r.cost.total.bytes_served,
          (unsigned long long)r.cost.total.repl_bytes,
          (unsigned long long)r.cost.total.storage_bytes);
      json += cost;
      for (std::size_t i = 0; i < r.cost.top.size(); ++i) {
        char top[128];
        std::snprintf(top, sizeof(top),
                      "%s{\"group\": \"%s\", \"total_bytes\": %llu}",
                      i == 0 ? "" : ", ", r.cost.top[i].first.c_str(),
                      (unsigned long long)r.cost.top[i].second);
        json += top;
      }
      json += "]}}\n";
      first = false;

      // Acceptance gate: under the log engine, factor >= 2 must keep
      // 100% of the state through a 25% cluster loss.
      if (mode == ClashConfig::ReplicationMode::kLog && factor >= 2 &&
          (r.streams_kept_pct < 100.0 || r.queries_kept_pct < 100.0)) {
        std::fprintf(stderr,
                     "FAIL: log mode factor %u lost state (%.1f%% streams, "
                     "%.1f%% queries)\n",
                     factor, r.streams_kept_pct, r.queries_kept_pct);
        return 1;
      }
      // Observability gate: a staged eviction MUST have shown up as a
      // nonzero detection latency, and log-mode commits as a nonzero
      // round trip — otherwise the instrumentation went dark.
      if (r.detect_us.count == 0 || r.detect_us.p50 <= 0) {
        std::fprintf(stderr, "FAIL: no failover-detect samples recorded\n");
        return 1;
      }
      if (mode == ClashConfig::ReplicationMode::kLog && factor >= 1 &&
          (r.commit_us.count == 0 || r.commit_us.p50 <= 0)) {
        std::fprintf(stderr, "FAIL: no commit-latency samples recorded\n");
        return 1;
      }
    }
  }
  json += "  ]\n}\n";

  std::printf(
      "\n# expectation: factor 0 loses every crashed group's state; factor "
      ">= 2 keeps 100%%. The log engine replaces per-period full snapshots "
      "with (epoch, seq) probes -- compare snapshot_msgs vs delta_msgs for "
      "the steady-state cost.\n");

  obs::maybe_embed_metrics(args, json, obs::Hub::global().registry);
  return write_json_artifact(args, json) ? 0 : 1;
}
