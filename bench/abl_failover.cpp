// Fault-tolerance ablation: replication factor vs recovery and cost.
// Loads a cluster, lets replicas form, then crashes a growing fraction
// of servers and measures how much state survives and what the
// replication traffic costs per server per second.
//
// Usage: abl_failover [--servers=64] [--sources=4000] [--seed=42]
#include <cstdio>

#include "clash/client.hpp"
#include "common/argparse.hpp"
#include "common/rng.hpp"
#include "sim/cluster.hpp"
#include "tests/clash/test_util.hpp"

using namespace clash;
using namespace clash::sim;

int main(int argc, char** argv) {
  const ArgParser args(argc, argv);
  const auto n_servers = std::size_t(args.get_int("servers", 64));
  const auto n_sources = std::size_t(args.get_int("sources", 4000));
  const auto seed = std::uint64_t(args.get_int("seed", 42));

  std::printf("# Failover ablation: %zu servers, %zu streams, crash 25%% "
              "of the cluster\n",
              n_servers, n_sources);
  std::printf("%-10s %12s %12s %12s %14s %16s\n", "replicas", "failovers",
              "recovered", "lost", "streams_kept_%", "repl msg/s/srv");

  for (const unsigned factor : {0u, 1u, 2u, 3u}) {
    SimCluster::Config cfg;
    cfg.num_servers = n_servers;
    cfg.seed = seed;
    cfg.clash.key_width = 24;
    cfg.clash.initial_depth = 6;
    cfg.clash.capacity = 1e9;  // isolate replication from splitting
    cfg.clash.replication_factor = factor;
    SimCluster cluster(cfg);
    cluster.bootstrap();

    ClashClient client(cluster.clash_config(),
                       cluster.client_env(ServerId{0}), cluster.hasher());
    Rng rng(seed);
    for (std::size_t i = 0; i < n_sources; ++i) {
      AcceptObject obj;
      obj.key = Key(rng.next() & 0xFFFFFF, 24);
      obj.kind = ObjectKind::kData;
      obj.source = ClientId{i};
      obj.stream_rate = 1;
      if (!client.insert(obj).ok) return 1;
    }
    // Two check periods of replica refresh.
    for (int round = 1; round <= 2; ++round) {
      cluster.set_now(SimTime::from_minutes(5 * round));
      cluster.run_all_load_checks();
    }
    const auto stats_before = cluster.total_stats();

    std::size_t recovered = 0;
    Rng crash_rng(seed + 1);
    for (std::size_t i = 0; i < n_servers / 4; ++i) {
      for (;;) {
        const ServerId victim{crash_rng.below(n_servers)};
        if (cluster.is_alive(victim)) {
          recovered += cluster.fail_server(victim);
          break;
        }
      }
    }

    std::size_t streams_kept = 0;
    for (std::size_t i = 0; i < n_servers; ++i) {
      if (!cluster.is_alive(ServerId{i})) continue;
      streams_kept += cluster.server(ServerId{i}).total_streams();
    }
    const auto total = cluster.total_stats();
    const double repl_rate =
        double(stats_before.replications) /
        (600.0 /* 2 periods */) / double(n_servers);
    std::printf("%-10u %12llu %12zu %12llu %14.1f %16.3f\n", factor,
                (unsigned long long)total.failovers, recovered,
                (unsigned long long)total.groups_lost,
                100.0 * double(streams_kept) / double(n_sources), repl_rate);
    if (const auto err = cluster.check_invariants()) {
      std::fprintf(stderr, "INVARIANT VIOLATION: %s\n", err->c_str());
      return 1;
    }
  }

  std::printf(
      "\n# expectation: factor 0 loses every crashed group's state; "
      "factor >= 2 keeps ~100%% through a 25%% cluster loss at a small "
      "per-server message cost\n");
  return 0;
}
