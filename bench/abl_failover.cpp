// Fault-tolerance ablation: replication factor x replication mode
// (snapshot-only lease vs operation log) vs state survival and cost.
// Loads a cluster with streams AND continuous queries, lets replicas
// form, then crashes 25% of the servers and measures how much state
// survives, what the steady-state replication traffic costs, and how
// much of it was incremental. Emits a JSON artifact like micro_net.
//
// Usage: abl_failover [--servers=64] [--sources=4000] [--queries=800]
//                     [--seed=42] [--json=PATH]
#include <cstdio>
#include <string>

#include "clash/client.hpp"
#include "common/argparse.hpp"
#include "common/rng.hpp"
#include "sim/cluster.hpp"
#include "tests/clash/test_util.hpp"

using namespace clash;
using namespace clash::sim;

namespace {

struct RunResult {
  const char* mode;
  unsigned factor;
  std::uint64_t failovers;
  std::uint64_t lost;
  double streams_kept_pct;
  double queries_kept_pct;
  double repl_msgs_per_srv_sec;   // steady-state refresh traffic
  std::uint64_t snapshot_msgs;    // full-state messages in steady state
  std::uint64_t delta_msgs;       // incremental messages in steady state
};

RunResult run_one(ClashConfig::ReplicationMode mode, unsigned factor,
                  std::size_t n_servers, std::size_t n_sources,
                  std::size_t n_queries, std::uint64_t seed) {
  SimCluster::Config cfg;
  cfg.num_servers = n_servers;
  cfg.seed = seed;
  cfg.clash.key_width = 24;
  cfg.clash.initial_depth = 6;
  cfg.clash.capacity = 1e9;  // isolate replication from splitting
  cfg.clash.replication_factor = factor;
  cfg.clash.replication_mode = mode;
  SimCluster cluster(cfg);
  cluster.bootstrap();

  ClashClient client(cluster.clash_config(), cluster.client_env(ServerId{0}),
                     cluster.hasher());
  Rng rng(seed);
  for (std::size_t i = 0; i < n_sources; ++i) {
    AcceptObject obj;
    obj.key = Key(rng.next() & 0xFFFFFF, 24);
    obj.kind = ObjectKind::kData;
    obj.source = ClientId{i};
    obj.stream_rate = 1;
    if (!client.insert(obj).ok) std::abort();
  }
  for (std::size_t i = 0; i < n_queries; ++i) {
    AcceptObject obj;
    obj.key = Key(rng.next() & 0xFFFFFF, 24);
    obj.kind = ObjectKind::kQuery;
    obj.query_id = QueryId{i};
    if (!client.insert(obj).ok) std::abort();
  }

  // Steady state: the registrations above already replicated (log mode
  // streams each op; snapshot mode ships leases at the check). Measure
  // two quiet check periods of refresh traffic.
  cluster.set_now(SimTime::from_minutes(5));
  cluster.run_all_load_checks();
  const auto before = cluster.total_stats();
  for (int round = 2; round <= 3; ++round) {
    cluster.set_now(SimTime::from_minutes(5 * round));
    cluster.run_all_load_checks();
  }
  const auto steady = cluster.total_stats() - before;

  Rng crash_rng(seed + 1);
  for (std::size_t i = 0; i < n_servers / 4; ++i) {
    for (;;) {
      const ServerId victim{crash_rng.below(n_servers)};
      if (cluster.is_alive(victim)) {
        cluster.fail_server(victim);
        break;
      }
    }
  }

  std::size_t streams_kept = 0;
  std::size_t queries_kept = 0;
  for (std::size_t i = 0; i < n_servers; ++i) {
    if (!cluster.is_alive(ServerId{i})) continue;
    streams_kept += cluster.server(ServerId{i}).total_streams();
    queries_kept += cluster.server(ServerId{i}).total_queries();
  }
  if (const auto err = cluster.check_invariants()) {
    std::fprintf(stderr, "INVARIANT VIOLATION: %s\n", err->c_str());
    std::abort();
  }

  const auto total = cluster.total_stats();
  RunResult r{};
  r.mode = mode == ClashConfig::ReplicationMode::kLog ? "log" : "snapshot";
  r.factor = factor;
  r.failovers = total.failovers;
  r.lost = total.groups_lost;
  r.streams_kept_pct = 100.0 * double(streams_kept) / double(n_sources);
  r.queries_kept_pct =
      n_queries == 0 ? 100.0
                     : 100.0 * double(queries_kept) / double(n_queries);
  const std::uint64_t refresh =
      steady.replications + steady.replication_log_messages();
  r.repl_msgs_per_srv_sec =
      double(refresh) / 600.0 /* 2 periods */ / double(n_servers);
  r.snapshot_msgs = steady.replications + steady.snapshot_offers +
                    steady.snapshot_chunks;
  r.delta_msgs = steady.repl_appends + steady.repl_acks +
                 steady.anti_entropy_probes + steady.anti_entropy_diffs;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const ArgParser args(argc, argv);
  const auto n_servers = std::size_t(args.get_int("servers", 64));
  const auto n_sources = std::size_t(args.get_int("sources", 4000));
  const auto n_queries = std::size_t(args.get_int("queries", 800));
  const auto seed = std::uint64_t(args.get_int("seed", 42));

  std::printf("# Failover ablation: %zu servers, %zu streams, %zu queries, "
              "crash 25%% of the cluster\n",
              n_servers, n_sources, n_queries);
  std::printf("%-9s %-8s %10s %6s %14s %14s %15s %13s %11s\n", "mode",
              "replicas", "failovers", "lost", "streams_kept_%",
              "queries_kept_%", "repl msg/s/srv", "snapshot_msgs",
              "delta_msgs");

  std::string json = "{\n  \"bench\": \"abl_failover\",\n  \"runs\": [\n";
  bool first = true;
  for (const auto mode : {ClashConfig::ReplicationMode::kSnapshot,
                          ClashConfig::ReplicationMode::kLog}) {
    for (const unsigned factor : {0u, 1u, 2u, 3u}) {
      const RunResult r = run_one(mode, factor, n_servers, n_sources,
                                  n_queries, seed);
      std::printf("%-9s %-8u %10llu %6llu %14.1f %14.1f %15.3f %13llu "
                  "%11llu\n",
                  r.mode, r.factor, (unsigned long long)r.failovers,
                  (unsigned long long)r.lost, r.streams_kept_pct,
                  r.queries_kept_pct, r.repl_msgs_per_srv_sec,
                  (unsigned long long)r.snapshot_msgs,
                  (unsigned long long)r.delta_msgs);
      char line[320];
      std::snprintf(
          line, sizeof(line),
          "    %s{\"mode\": \"%s\", \"factor\": %u, \"failovers\": %llu, "
          "\"groups_lost\": %llu, \"streams_kept_pct\": %.1f, "
          "\"queries_kept_pct\": %.1f, \"repl_msgs_per_srv_sec\": %.3f, "
          "\"snapshot_msgs\": %llu, \"delta_msgs\": %llu}",
          first ? "" : ",", r.mode, r.factor,
          (unsigned long long)r.failovers, (unsigned long long)r.lost,
          r.streams_kept_pct, r.queries_kept_pct, r.repl_msgs_per_srv_sec,
          (unsigned long long)r.snapshot_msgs,
          (unsigned long long)r.delta_msgs);
      json += line;
      json += "\n";
      first = false;

      // Acceptance gate: under the log engine, factor >= 2 must keep
      // 100% of the state through a 25% cluster loss.
      if (mode == ClashConfig::ReplicationMode::kLog && factor >= 2 &&
          (r.streams_kept_pct < 100.0 || r.queries_kept_pct < 100.0)) {
        std::fprintf(stderr,
                     "FAIL: log mode factor %u lost state (%.1f%% streams, "
                     "%.1f%% queries)\n",
                     factor, r.streams_kept_pct, r.queries_kept_pct);
        return 1;
      }
    }
  }
  json += "  ]\n}\n";

  std::printf(
      "\n# expectation: factor 0 loses every crashed group's state; factor "
      ">= 2 keeps 100%%. The log engine replaces per-period full snapshots "
      "with (epoch, seq) probes -- compare snapshot_msgs vs delta_msgs for "
      "the steady-state cost.\n");

  return write_json_artifact(args, json) ? 0 : 1;
}
