// Membership ablation: SWIM detection latency and gossip overhead vs
// cluster size and suspicion timeout. Kills 25% of the cluster at
// once and measures how many protocol periods the survivors need to
// converge (every victim dead in every surviving view, ring matching
// the alive set), what the gossip costs per server per period, and how
// much replicated state survives the failover.
//
// Usage: abl_membership [--sources=2000] [--seed=42] [--json=PATH]
#include <cstdio>
#include <string>
#include <vector>

#include "clash/client.hpp"
#include "common/argparse.hpp"
#include "obs/expose.hpp"
#include "obs/hub.hpp"
#include "common/rng.hpp"
#include "sim/churn.hpp"

using namespace clash;
using namespace clash::sim;

namespace {

struct Outcome {
  int periods = -1;
  double gossip_per_server_per_period = 0;
  double streams_kept_pct = 0;
  std::uint64_t failovers = 0;
  std::uint64_t groups_lost = 0;
};

Outcome run_one(std::size_t n_servers, unsigned suspicion_periods,
                std::size_t n_sources, std::uint64_t seed) {
  ChurnSim::Config cfg;
  cfg.cluster.num_servers = n_servers;
  cfg.cluster.seed = seed;
  cfg.cluster.clash.key_width = 16;
  cfg.cluster.clash.initial_depth = 5;
  cfg.cluster.clash.capacity = 1e9;  // isolate membership from splitting
  cfg.cluster.clash.replication_factor = 2;
  cfg.membership.suspicion_periods = suspicion_periods;
  cfg.seed = seed;
  ChurnSim sim(cfg);
  sim.start();

  ClashClient client(sim.cluster().clash_config(),
                     sim.cluster().client_env(ServerId{0}),
                     sim.cluster().hasher());
  Rng rng(seed);
  for (std::size_t i = 0; i < n_sources; ++i) {
    AcceptObject obj;
    obj.key = Key(rng.next() & 0xFFFF, 16);
    obj.kind = ObjectKind::kData;
    obj.source = ClientId{i};
    obj.stream_rate = 1;
    if (!client.insert(obj).ok) return {};
  }
  sim.run_for(SimTime::from_minutes(11));  // two replication rounds

  std::vector<ServerId> victims;
  Rng crash_rng(seed + 1);
  while (victims.size() < n_servers / 4) {
    const ServerId v{crash_rng.below(n_servers)};
    if (sim.cluster().is_alive(v)) {
      sim.kill(v);
      victims.push_back(v);
    }
  }

  Outcome out;
  const auto gossip_before = sim.gossip_messages();
  for (int period = 1; period <= 100; ++period) {
    sim.run_for(sim.protocol_period());
    bool all = sim.ring_matches_membership();
    for (const ServerId v : victims) {
      all = all && sim.all_survivors_see_dead(v);
    }
    if (all) {
      out.periods = period;
      break;
    }
  }
  const double survivors = double(n_servers - victims.size());
  out.gossip_per_server_per_period =
      out.periods <= 0 ? 0
                       : double(sim.gossip_messages() - gossip_before) /
                             survivors / double(out.periods);

  std::size_t kept = 0;
  for (std::size_t i = 0; i < n_servers; ++i) {
    if (!sim.cluster().is_alive(ServerId{i})) continue;
    kept += sim.cluster().server(ServerId{i}).total_streams();
  }
  out.streams_kept_pct =
      n_sources == 0 ? 100.0 : 100.0 * double(kept) / double(n_sources);
  out.failovers = sim.cluster().total_stats().failovers;
  out.groups_lost = sim.cluster().total_stats().groups_lost;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const ArgParser args(argc, argv);
  const auto n_sources = std::size_t(args.get_int("sources", 2000));
  const auto seed = std::uint64_t(args.get_int("seed", 42));

  std::printf("# SWIM membership ablation: kill 25%% of the cluster, "
              "measure convergence and overhead\n");
  std::printf("%-8s %-10s %12s %18s %14s %10s %12s\n", "servers",
              "suspicion", "periods", "gossip/srv/period", "streams_kept_%",
              "failovers", "groups_lost");

  std::string json = "{\n  \"bench\": \"abl_membership\",\n  \"runs\": [\n";
  bool first = true;
  for (const std::size_t n : {16u, 32u, 64u}) {
    for (const unsigned suspicion : {1u, 3u, 6u}) {
      const auto out = run_one(n, suspicion, n_sources, seed);
      std::printf("%-8zu %-10u %12d %18.2f %14.1f %10llu %12llu\n", n,
                  suspicion, out.periods, out.gossip_per_server_per_period,
                  out.streams_kept_pct,
                  (unsigned long long)out.failovers,
                  (unsigned long long)out.groups_lost);
      char line[256];
      std::snprintf(line, sizeof(line),
                    "    %s{\"servers\": %zu, \"suspicion\": %u, "
                    "\"periods\": %d, \"gossip_per_srv_period\": %.2f, "
                    "\"streams_kept_pct\": %.1f, \"failovers\": %llu, "
                    "\"groups_lost\": %llu}",
                    first ? "" : ",", n, suspicion, out.periods,
                    out.gossip_per_server_per_period, out.streams_kept_pct,
                    (unsigned long long)out.failovers,
                    (unsigned long long)out.groups_lost);
      json += line;
      json += "\n";
      first = false;
    }
  }
  json += "  ]\n}\n";

  std::printf(
      "\n# expectation: detection latency = probe timeouts + suspicion "
      "fuse + dissemination, so it grows linearly in the suspicion "
      "setting and ~logarithmically in cluster size; gossip stays a few "
      "messages per server per period regardless; replication factor 2 "
      "keeps ~100%% of streams through the 25%% loss\n");
  obs::maybe_embed_metrics(args, json, obs::Hub::global().registry);
  return write_json_artifact(args, json) ? 0 : 1;
}
