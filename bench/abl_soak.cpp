// Long-horizon soak: hours of simulated kill / revive / flap /
// fail-slow / clock-skew / corruption churn against live continuous
// queries, under live SWIM membership and log replication. Each round
// is a storm (two crashes, a flapping minority link, one fail-slow
// node at 100x, +/-30% clock skew on four nodes, and a default link
// fault corrupting payload bytes in flight) followed by a settle
// (heal, revive, converge). The run self-gates:
//
//   - zero lost acked writes: every query the client got an ack for is
//     live on some owner after every settle,
//   - converged heads: every replica matches its owner's (epoch, seq)
//     log head post-heal,
//   - bounded detection: each fail-slow victim is excommunicated
//     within --slow-evict-limit simulated seconds,
//   - corruption never installs: the content-CRC fences reject
//     in-flight damage (non-zero rejection counters, invariants clean),
//   - bounded growth: replica records and pending-event backlog return
//     to a fixed multiple of their post-bootstrap baseline each round,
//   - census health: after every settle the gossiped cost census is
//     converged (every live table holds exactly the live set), and
//     across the whole soak its gossip payload averages under
//     --census-budget bytes per node per protocol period — the budget
//     knobs (census_max_records, top_k) must actually bound the
//     traffic, storms included. (The relative census-vs-data-plane
//     gate lives in abl_census, which drives an ingest workload.)
//
// Usage: abl_soak [--servers=18] [--rounds=4] [--queries=40]
//                 [--storm-minutes=12] [--settle-minutes=30]
//                 [--slow-evict-limit=180] [--seed=42] [--json=PATH]
//                 [--census-budget=1024] [--metrics-json]
//
// Defaults cover ~90+ simulated minutes; CI smoke runs
// --rounds=1 --storm-minutes=8 --settle-minutes=25 in about a minute.
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "clash/client.hpp"
#include "common/argparse.hpp"
#include "common/rng.hpp"
#include "obs/expose.hpp"
#include "obs/hub.hpp"
#include "obs/postmortem.hpp"
#include "sim/churn.hpp"

using namespace clash;
using namespace clash::sim;

namespace {

constexpr unsigned kWidth = 10;

struct RoundResult {
  unsigned round = 0;
  bool converged = false;
  double settle_minutes = 0;
  std::size_t queries_registered = 0;  // cumulative acked
  std::size_t queries_kept = 0;
  double slow_evict_seconds = -1;  // -1 = victim never evicted
  std::uint64_t corrupt_rejected = 0;  // cumulative, all fences
  std::uint64_t corrupt_drops = 0;     // cumulative codec-level drops
  std::size_t replica_records = 0;
  std::size_t pending_events = 0;
  bool census_ok = false;  // census tables == live set after settle
};

ChurnSim::Config base_config(std::size_t servers, std::uint64_t seed) {
  ChurnSim::Config cfg;
  cfg.cluster.num_servers = servers;
  cfg.cluster.seed = seed;
  cfg.cluster.clash.key_width = kWidth;
  cfg.cluster.clash.initial_depth = 3;
  cfg.cluster.clash.capacity = 1e9;  // isolate replication from splitting
  cfg.cluster.clash.replication_factor = 2;
  cfg.cluster.clash.replication_mode = ClashConfig::ReplicationMode::kLog;
  cfg.protocol_period = SimTime::from_seconds(1);
  cfg.gossip_delay = SimTime::from_seconds(0.02);
  cfg.seed = seed * 31 + 7;
  return cfg;
}

std::size_t register_queries(ChurnSim& sim, std::size_t n,
                             std::uint64_t first_id) {
  ClashClient client(sim.cluster().clash_config(),
                     sim.cluster().client_env(ServerId{0}),
                     sim.cluster().hasher());
  Rng rng(first_id * 131 + 5);
  std::size_t acked = 0;
  for (std::size_t i = 0; i < n; ++i) {
    AcceptObject obj;
    obj.key = Key(rng.next() & ((1u << kWidth) - 1), kWidth);
    obj.kind = ObjectKind::kQuery;
    obj.query_id = QueryId{first_id + i};
    if (client.insert(obj).ok) ++acked;  // only acks count as durable
  }
  return acked;
}

std::size_t live_queries(const SimCluster& cluster) {
  std::size_t total = 0;
  for (std::size_t i = 0; i < cluster.num_servers(); ++i) {
    if (cluster.is_alive(ServerId{i})) {
      total += cluster.server(ServerId{i}).total_queries();
    }
  }
  return total;
}

std::size_t replica_records(const SimCluster& cluster) {
  std::size_t total = 0;
  for (std::size_t i = 0; i < cluster.num_servers(); ++i) {
    total += cluster.server(ServerId{i}).replica_count();
  }
  return total;
}

std::optional<std::string> heads_converged(const SimCluster& cluster) {
  for (const auto& [group, owner] : cluster.owner_index()) {
    const auto owner_head = cluster.server(owner).log_head(group);
    if (!owner_head) return "owner of " + group.label() + " has no log";
    for (std::size_t i = 0; i < cluster.num_servers(); ++i) {
      const ServerId id{i};
      if (!cluster.is_alive(id) || id == owner) continue;
      if (!cluster.server(id).has_replica(group)) continue;
      if (cluster.server(id).replica_head(group) != owner_head) {
        return group.label() + ": replica on s" + std::to_string(i) +
               " diverged";
      }
    }
  }
  return std::nullopt;
}

/// Every live node's census table holds exactly the live set — the
/// telemetry plane survived the storm along with the data plane.
bool census_converged(ChurnSim& sim, std::size_t servers) {
  std::size_t alive = 0;
  for (std::size_t i = 0; i < servers; ++i) {
    if (sim.cluster().is_alive(ServerId{i})) ++alive;
  }
  for (std::size_t i = 0; i < servers; ++i) {
    const ServerId id{i};
    if (!sim.cluster().is_alive(id)) continue;
    if (sim.census_of(id).table_size() != alive) return false;
    for (std::size_t j = 0; j < servers; ++j) {
      if ((sim.census_of(id).record_of(ServerId{j}) != nullptr) !=
          sim.cluster().is_alive(ServerId{j})) {
        return false;
      }
    }
  }
  return true;
}

std::uint64_t total_corrupt_rejected(const ChurnSim& sim) {
  // Gossip fences live in the membership drivers, ReplAppend /
  // SnapshotChunk fences in the servers' event stats.
  return sim.gossip_corrupt_rejected() +
         sim.cluster().total_stats().corrupt_rejected;
}

}  // namespace

int main(int argc, char** argv) {
  const ArgParser args(argc, argv);
  const auto servers = std::size_t(args.get_int("servers", 18));
  const auto rounds = unsigned(args.get_int("rounds", 4));
  const auto queries = std::size_t(args.get_int("queries", 40));
  const auto seed = std::uint64_t(args.get_int("seed", 42));
  const double storm_minutes = double(args.get_int("storm-minutes", 12));
  const double settle_minutes = double(args.get_int("settle-minutes", 30));
  const double slow_evict_limit =
      double(args.get_int("slow-evict-limit", 180));
  const double corrupt_pct = double(args.get_int("corrupt-pct", 3));
  const unsigned flap_cycles = unsigned(args.get_int("flap-cycles", 3));
  const bool skew = args.get_int("skew", 1) != 0;
  const double census_budget = double(args.get_int("census-budget", 1024));

  ChurnSim sim(base_config(servers, seed));
  sim.start();
  // Any gate failure (or invariant abort) below dumps the global
  // flight ring + in-flight table next to the JSON artifact.
  obs::Postmortem& pm = obs::Postmortem::global();
  pm.set_dir(".");
  obs::register_hub_source(pm, obs::Hub::global(), "abl_soak",
                           [&sim] { return sim.cluster().now().usec; });
  // Metered for the whole soak: the census-overhead gate is cumulative
  // across every storm, not a quiet-window measurement.
  sim.cluster().set_wire_metering(true);
  Rng pick(seed * 77 + 3);

  std::printf("# Soak: %zu servers, %u rounds of "
              "kill/flap/slow/skew/corrupt churn, ~%.0f sim-minutes\n",
              servers, rounds,
              rounds * (storm_minutes + 4 + settle_minutes / 2));
  std::printf("%-6s %-9s %11s %13s %15s %15s %9s %8s %7s\n", "round",
              "converged", "settle_min", "queries_kept", "slow_evict_sec",
              "corrupt_rejd", "replicas", "events", "census");

  // Warm-up: register the first batch and let replication settle
  // before the first storm, so round 1 has durable state to threaten.
  std::size_t acked = register_queries(sim, queries, 0);
  sim.run_for(SimTime::from_minutes(11));
  const std::size_t replica_baseline = replica_records(sim.cluster());

  // Four nodes run the whole soak on skewed clocks: their SWIM periods
  // and load checks fire 30% fast / slow. Eviction and refutation must
  // stay correct anyway — the gates below make no allowance for it.
  const double skews[] = {0.7, 1.3, 0.75, 1.25};
  if (skew) {
    for (std::size_t i = 0; i < 4 && i + 2 < servers; ++i) {
      sim.set_clock_rate(ServerId{i + 2}, skews[i]);
    }
  }

  std::string json = "{\n  \"bench\": \"abl_soak\",\n  \"rounds\": [\n";
  bool ok = true;
  std::vector<RoundResult> results;

  for (unsigned round = 1; round <= rounds; ++round) {
    RoundResult r{};
    r.round = round;

    // --- Storm ---------------------------------------------------------
    // Background byte-rot + light loss on every link for the duration.
    LinkMatrix::Fault noise;
    noise.corrupt_prob = corrupt_pct / 100.0;
    noise.drop_prob = 0.01;
    sim.links().set_default_fault(noise);

    // Fresh acked writes land *during* the fault window.
    acked += register_queries(sim, queries / 2, 100000ULL * round);

    // Two crashes, spaced so SWIM convergence from the first completes
    // (bounds concurrently-dead to the replication factor).
    const ServerId dead1{pick.below(servers)};
    sim.kill(dead1);
    sim.run_for(SimTime::from_minutes(2.5));
    ServerId dead2{pick.below(servers)};
    while (dead2 == dead1) dead2 = ServerId{pick.below(servers)};
    sim.kill(dead2);

    // A two-node minority flaps: 30s cut, 30s heal, three cycles.
    std::vector<ServerId> flappers;
    for (std::size_t i = 0; i < servers && flappers.size() < 2; ++i) {
      const ServerId id{i};
      if (id != dead1 && id != dead2 && sim.cluster().is_alive(id)) {
        flappers.push_back(id);
      }
    }
    sim.schedule_flaps(flappers, SimTime::from_seconds(30), flap_cycles);

    // One fail-slow victim at 100x: still answering, far too late.
    // Measure crash-free detection: sim-time from onset to
    // excommunication (the survivors' unanimous verdict).
    ServerId slow{0};
    do {
      slow = ServerId{pick.below(servers)};
    } while (slow == dead1 || slow == dead2 ||
             (!flappers.empty() &&
              (slow == flappers[0] || slow == flappers[1])) ||
             !sim.cluster().is_alive(slow));
    sim.set_slow(slow, 100.0);
    const auto slow_onset = sim.cluster().now();
    while (sim.cluster().is_alive(slow) &&
           (sim.cluster().now() - slow_onset).seconds() <
               slow_evict_limit) {
      sim.run_for(SimTime::from_seconds(5));
    }
    if (!sim.cluster().is_alive(slow)) {
      r.slow_evict_seconds = (sim.cluster().now() - slow_onset).seconds();
    }

    // Ride out the rest of the storm under continued corruption.
    const double spent = (sim.cluster().now() - slow_onset).minutes();
    if (spent < storm_minutes) {
      sim.run_for(SimTime::from_minutes(storm_minutes - spent));
    }

    // --- Settle --------------------------------------------------------
    sim.heal_partitions();  // clears flap cuts AND the corrupt default
    // Revive everything dead — the two kills, the excommunicated slow
    // victim, and any node the group fenced spuriously (a flapper
    // caught in the post-heal refutation window gets excommunicated
    // exactly like a real flappy node kicked from a production group;
    // the operator restarts it). Lost-write and convergence gates make
    // no allowance for those extra fencings: replication must cover
    // every one of them.
    for (std::size_t i = 0; i < servers; ++i) {
      if (!sim.cluster().is_alive(ServerId{i})) sim.revive(ServerId{i});
    }

    const auto healed_at = sim.cluster().now();
    for (int m = 0; m < int(settle_minutes) && !r.converged; ++m) {
      sim.run_for(SimTime::from_minutes(1));
      r.converged = heads_converged(sim.cluster()) == std::nullopt &&
                    live_queries(sim.cluster()) == acked &&
                    sim.cluster().alive_count() == servers;
    }
    r.settle_minutes = (sim.cluster().now() - healed_at).minutes();
    if (!r.converged) {
      const auto head_err = heads_converged(sim.cluster());
      std::fprintf(stderr,
                   "round %u stuck: heads=%s queries=%zu/%zu alive=%zu/%zu "
                   "ring_ok=%d\n",
                   round,
                   head_err ? head_err->c_str() : "ok",
                   live_queries(sim.cluster()), acked,
                   sim.cluster().alive_count(), servers,
                   int(sim.ring_matches_membership()));
    }
    r.census_ok = census_converged(sim, servers);
    if (!r.census_ok) {
      // The data plane can converge while the last census records are
      // still in flight; give gossip a short grace before judging.
      sim.run_for(SimTime::from_minutes(2));
      r.census_ok = census_converged(sim, servers);
    }
    r.queries_registered = acked;
    r.queries_kept = live_queries(sim.cluster());
    r.corrupt_rejected = total_corrupt_rejected(sim);
    r.corrupt_drops = sim.cluster().total_stats().corrupt_drops;
    r.replica_records = replica_records(sim.cluster());
    r.pending_events = sim.events().pending();

    if (const auto err = sim.cluster().check_invariants()) {
      std::fprintf(stderr, "INVARIANT VIOLATION (round %u): %s\n", round,
                   err->c_str());
      obs::Postmortem::global().dump("abl_soak invariant: " + *err);
      std::abort();
    }

    std::printf("%-6u %-9s %11.1f %8zu/%-4zu %15.1f %15llu %9zu %8zu %7s\n",
                r.round, r.converged ? "yes" : "NO", r.settle_minutes,
                r.queries_kept, r.queries_registered, r.slow_evict_seconds,
                (unsigned long long)r.corrupt_rejected, r.replica_records,
                r.pending_events, r.census_ok ? "ok" : "STALE");

    // --- Gates ---------------------------------------------------------
    if (!r.converged || r.queries_kept != r.queries_registered) {
      std::fprintf(stderr,
                   "FAIL round %u: not converged (%zu/%zu queries)\n",
                   round, r.queries_kept, r.queries_registered);
      ok = false;
    }
    if (r.slow_evict_seconds < 0) {
      std::fprintf(stderr,
                   "FAIL round %u: fail-slow s%zu not evicted within "
                   "%.0fs\n",
                   round, slow.value, slow_evict_limit);
      ok = false;
    }
    if (!r.census_ok) {
      std::fprintf(stderr,
                   "FAIL round %u: census not converged after settle\n",
                   round);
      ok = false;
    }
    // Replica records may grow with the query load but must stay a
    // small multiple of the post-bootstrap baseline — unbounded growth
    // here is the leak signature of a retire/handoff bug.
    if (r.replica_records > 4 * replica_baseline + 8 * acked) {
      std::fprintf(stderr,
                   "FAIL round %u: replica records grew unbounded "
                   "(%zu, baseline %zu)\n",
                   round, r.replica_records, replica_baseline);
      ok = false;
    }

    results.push_back(r);
  }

  // Corruption must have been exercised AND fenced: at least one
  // structurally-valid damaged payload rejected by a content CRC, and
  // zero installs of corrupt state (converged + invariants already
  // proved the latter).
  const std::uint64_t rejected = total_corrupt_rejected(sim);
  const std::uint64_t codec_drops = sim.cluster().total_stats().corrupt_drops;
  if (rejected == 0) {
    std::fprintf(stderr,
                 "FAIL: no corrupted payload ever reached a content "
                 "fence (rejected=0, codec drops=%llu)\n",
                 (unsigned long long)codec_drops);
    ok = false;
  }

  // Census byte-rate across the whole soak, storms included.
  const auto wire = sim.cluster().total_stats();
  const double periods = sim.cluster().now().seconds();  // 1s period
  const double census_rate =
      periods <= 0 ? 0 : double(wire.census_bytes) / (periods * servers);
  if (wire.census_records == 0 ||
      wire.census_bytes == 0 ||
      census_rate > census_budget) {
    std::fprintf(stderr,
                 "FAIL: census gossip averaged %.0f bytes/node/period "
                 "(budget %.0f, records=%llu)\n",
                 census_rate, census_budget,
                 (unsigned long long)wire.census_records);
    ok = false;
  }

  bool first = true;
  for (const auto& r : results) {
    char line[512];
    std::snprintf(
        line, sizeof(line),
        "    %s{\"round\": %u, \"converged\": %s, "
        "\"settle_minutes\": %.1f, \"queries_registered\": %zu, "
        "\"queries_kept\": %zu, \"slow_evict_seconds\": %.1f, "
        "\"corrupt_rejected\": %llu, \"corrupt_codec_drops\": %llu, "
        "\"replica_records\": %zu, \"pending_events\": %zu, "
        "\"census_converged\": %s}",
        first ? "" : ",", r.round, r.converged ? "true" : "false",
        r.settle_minutes, r.queries_registered, r.queries_kept,
        r.slow_evict_seconds, (unsigned long long)r.corrupt_rejected,
        (unsigned long long)r.corrupt_drops, r.replica_records,
        r.pending_events, r.census_ok ? "true" : "false");
    json += line;
    json += "\n";
    first = false;
  }
  json += "  ],\n";
  json += "  \"sim_minutes\": " +
          std::to_string(sim.cluster().now().minutes()) + ",\n";
  json += "  \"corrupt_rejected_total\": " + std::to_string(rejected) +
          ",\n";
  json += "  \"corrupt_codec_drops\": " + std::to_string(codec_drops) +
          ",\n";
  json += "  \"slow_evictions\": " +
          std::to_string(sim.cluster().total_stats().slow_evictions) +
          ",\n";
  json += "  \"census_records\": " + std::to_string(wire.census_records) +
          ",\n";
  json += "  \"census_bytes\": " + std::to_string(wire.census_bytes) + ",\n";
  json += "  \"census_bytes_per_node_period\": " +
          std::to_string(census_rate) + ",\n";
  json += "  \"passed\": " + std::string(ok ? "true" : "false") + "\n}\n";

  std::printf("\n# expectation: every round converges with zero lost "
              "acked writes; each fail-slow victim is excommunicated "
              "within the detection window without ever crashing; "
              "corrupted payloads die at CRC fences (%llu rejected, "
              "%llu codec drops), never installed.\n",
              (unsigned long long)rejected,
              (unsigned long long)codec_drops);

  obs::maybe_embed_metrics(args, json, obs::Hub::global().registry);
  if (!write_json_artifact(args, json)) return 1;
  if (!ok) obs::Postmortem::global().dump("abl_soak gate failure");
  return ok ? 0 : 1;
}
