// Figure 3: the three workload skew curves over the 8-bit base portion
// of the key. Prints one row per base value with the expected number of
// sources (out of --sources) choosing it, plus calibration summaries.
//
// Usage: fig3_workloads [--sources=100000] [--csv]
#include <cstdio>
#include <numeric>

#include "common/argparse.hpp"
#include "sim/workload.hpp"

using namespace clash;
using namespace clash::sim;

int main(int argc, char** argv) {
  const ArgParser args(argc, argv);
  const double sources = args.get_double("sources", 100000);
  const bool csv = args.get_bool("csv", false);

  const WorkloadSpec specs[] = {workload_a(), workload_b(), workload_c()};
  double totals[3];
  for (int w = 0; w < 3; ++w) {
    totals[w] = std::accumulate(specs[w].base_weights.begin(),
                                specs[w].base_weights.end(), 0.0);
  }

  std::printf("# Figure 3: workloads used in simulation\n");
  std::printf("# expected sources per 8-bit base key value (of %.0f)\n",
              sources);
  std::printf(csv ? "base,workload_A,workload_B,workload_C\n"
                  : "%-6s %12s %12s %12s\n",
              "base", "workload_A", "workload_B", "workload_C");
  for (std::size_t i = 0; i < 256; ++i) {
    const double a = sources * specs[0].base_weights[i] / totals[0];
    const double b = sources * specs[1].base_weights[i] / totals[1];
    const double c = sources * specs[2].base_weights[i] / totals[2];
    if (csv) {
      std::printf("%zu,%.1f,%.1f,%.1f\n", i, a, b, c);
    } else {
      std::printf("%-6zu %12.1f %12.1f %12.1f\n", i, a, b, c);
    }
  }

  std::printf("\n# calibration summary (see DESIGN.md)\n");
  for (int w = 0; w < 3; ++w) {
    const auto& s = specs[w];
    std::printf(
        "workload %s: rate=%.0f pkt/s  hottest 6-bit group mass=%.3f  "
        "support=%zu/256 base values\n",
        s.name.c_str(), s.source_rate, s.hottest_group_mass(6),
        s.support_size(1e-3));
  }
  std::printf(
      "# paper shape check: A near-uniform, B moderate bump, C sharp "
      "spike (~30%% mass in hottest 6-bit group => DHT(6) peak ~25x "
      "capacity)\n");
  return 0;
}
