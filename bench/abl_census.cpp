// Telemetry-plane ablation: the gossiped cost census and cross-node
// trace propagation, self-gated.
//
// Per cluster size (default 16, 64, 256), under live SWIM membership:
//
//   1. convergence: every node's census table must hold exactly the
//      live set within a bounded number of protocol periods,
//   2. accuracy under churn: after a kill + revive cycle and a settle,
//      every node's folded ClusterView must match ground truth — node
//      count, cluster totals, and the merged per-group cost ranking
//      (modulo each node's top-K truncation, replicated on the truth
//      side) — computed straight from the simulated servers.
//
// On the first (canonical, CI-smoke) size only, two more gates:
//
//   3. overhead: with wire metering on and a steady per-node ingest
//      workload, the census payload inside delivered gossip frames
//      must stay under --budget-pct (default 10%) of total wire bytes,
//   4. trace stitching: one query inserted with a trace id must leave
//      TraceRecorder spans on >= 2 distinct nodes (owner ingest +
//      replica apply) sharing that id.
//
// Usage: abl_census [--sizes=16,64,256] [--seed=42]
//                   [--ingest-per-node=40] [--overhead-periods=45]
//                   [--budget-pct=10] [--json=PATH] [--metrics-json]
#include <algorithm>
#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "clash/client.hpp"
#include "common/argparse.hpp"
#include "common/rng.hpp"
#include "obs/expose.hpp"
#include "obs/hub.hpp"
#include "sim/churn.hpp"

using namespace clash;
using namespace clash::sim;

namespace {

constexpr unsigned kWidth = 10;

struct SizeResult {
  std::size_t servers = 0;
  int converge_rounds = -1;   // -1 = never converged
  int churn_rounds = -1;      // reconvergence after kill + revive
  bool view_ok = false;
  std::string view_err;
};

ChurnSim::Config census_config(std::size_t servers, std::uint64_t seed) {
  ChurnSim::Config cfg;
  cfg.cluster.num_servers = servers;
  cfg.cluster.seed = seed;
  cfg.cluster.clash.key_width = kWidth;
  cfg.cluster.clash.initial_depth = 3;
  cfg.cluster.clash.capacity = 1e9;  // stable groups: no load splits
  cfg.cluster.clash.replication_factor = 2;
  cfg.cluster.clash.replication_mode = ClashConfig::ReplicationMode::kLog;
  cfg.protocol_period = SimTime::from_seconds(1);
  cfg.gossip_delay = SimTime::from_seconds(0.02);
  cfg.census.refresh_periods = 2;
  // Gossip budget knobs, scaled with the table (README "Cluster
  // telemetry"): bigger clusters piggyback more records per frame so
  // dissemination latency stays sublinear in N, and get a longer
  // aging leash so slow rotation can't flicker healthy peers out.
  cfg.membership.census_max_records = std::max<std::size_t>(2, servers / 32);
  cfg.census.ttl_periods = std::max<std::uint64_t>(96, 8 * servers);
  cfg.seed = seed * 131 + 7;
  return cfg;
}

/// Every live node's census table holds exactly the live set.
bool census_converged(ChurnSim& sim, std::size_t servers) {
  std::size_t alive = 0;
  for (std::size_t i = 0; i < servers; ++i) {
    if (sim.cluster().is_alive(ServerId{i})) ++alive;
  }
  for (std::size_t i = 0; i < servers; ++i) {
    const ServerId id{i};
    if (!sim.cluster().is_alive(id)) continue;
    if (sim.census_of(id).table_size() != alive) return false;
    for (std::size_t j = 0; j < servers; ++j) {
      const ServerId peer{j};
      if ((sim.census_of(id).record_of(peer) != nullptr) !=
          sim.cluster().is_alive(peer)) {
        return false;
      }
    }
  }
  return true;
}

int run_until_converged(ChurnSim& sim, std::size_t servers, int bound) {
  for (int period = 1; period <= bound; ++period) {
    sim.run_for(sim.protocol_period());
    if (census_converged(sim, servers)) return period;
  }
  return -1;
}

std::size_t ingest(ChurnSim& sim, std::size_t n, std::uint64_t salt) {
  ClashClient client(sim.cluster().clash_config(),
                     sim.cluster().client_env(ServerId{0}),
                     sim.cluster().hasher());
  Rng rng(salt * 977 + 13);
  std::size_t acked = 0;
  for (std::size_t i = 0; i < n; ++i) {
    AcceptObject obj;
    obj.key = Key(rng.next() & ((1u << kWidth) - 1), kWidth);
    obj.kind = (i % 4 == 0) ? ObjectKind::kQuery : ObjectKind::kData;
    if (obj.kind == ObjectKind::kQuery) {
      obj.query_id = QueryId{salt * 1'000'000 + i};
    } else {
      obj.source = ClientId{salt * 1'000'000 + i};
      obj.stream_rate = 1.0;
    }
    if (client.insert(obj).ok) ++acked;
  }
  return acked;
}

/// Replicates the fold + merge on ground truth and diffs it against
/// every node's view. Empty string = all views match.
std::string check_views(ChurnSim& sim, std::size_t servers) {
  const std::size_t top_k = sim.census_of(ServerId{0}).config().top_k;
  std::uint64_t t_streams = 0, t_queries = 0, t_groups = 0;
  double t_load = 0;
  GroupCost t_totals;
  std::map<KeyGroup, GroupCost> t_merged;
  for (std::size_t i = 0; i < servers; ++i) {
    const auto& srv = sim.cluster().server(ServerId{i});
    t_streams += srv.total_streams();
    t_queries += srv.total_queries();
    t_groups += srv.table().active_count();
    t_load += srv.server_load();
    t_totals += srv.total_group_cost();
    // Per-node top-K with the census's deterministic ordering.
    std::vector<CensusGroupCost> top;
    top.reserve(srv.group_costs().size());
    for (const auto& [group, cost] : srv.group_costs()) {
      top.push_back(CensusGroupCost{group, cost});
    }
    std::sort(top.begin(), top.end(),
              [](const CensusGroupCost& a, const CensusGroupCost& b) {
                if (a.cost.total_bytes() != b.cost.total_bytes()) {
                  return a.cost.total_bytes() > b.cost.total_bytes();
                }
                return a.group < b.group;
              });
    if (top.size() > top_k) top.resize(top_k);
    for (const auto& gc : top) t_merged[gc.group] += gc.cost;
  }

  for (std::size_t i = 0; i < servers; ++i) {
    const auto view = sim.census_of(ServerId{i}).view();
    const std::string at = "node " + std::to_string(i) + ": ";
    if (view.nodes.size() != servers) {
      return at + "sees " + std::to_string(view.nodes.size()) + "/" +
             std::to_string(servers) + " nodes";
    }
    if (view.total_streams != t_streams || view.total_queries != t_queries) {
      return at + "streams/queries " + std::to_string(view.total_streams) +
             "/" + std::to_string(view.total_queries) + " != truth " +
             std::to_string(t_streams) + "/" + std::to_string(t_queries);
    }
    if (view.total_groups != t_groups) {
      return at + "groups " + std::to_string(view.total_groups) +
             " != truth " + std::to_string(t_groups);
    }
    if (view.totals.total_bytes() != t_totals.total_bytes()) {
      return at + "cost totals diverge from ground truth";
    }
    const double load_err = view.total_load - t_load;
    if (load_err > 1e-6 || load_err < -1e-6) {
      return at + "load diverges from ground truth";
    }
    if (view.top_groups.size() != t_merged.size()) {
      return at + "top-group count " +
             std::to_string(view.top_groups.size()) + " != truth " +
             std::to_string(t_merged.size());
    }
    for (const auto& gc : view.top_groups) {
      const auto it = t_merged.find(gc.group);
      if (it == t_merged.end()) {
        return at + "ranks unknown group " + gc.group.label();
      }
      if (gc.cost.total_bytes() != it->second.total_bytes()) {
        return at + "cost of " + gc.group.label() + " diverges";
      }
    }
    // Ranking head: the heaviest group agrees with ground truth.
    if (!view.top_groups.empty()) {
      const auto heaviest = std::max_element(
          t_merged.begin(), t_merged.end(), [](const auto& a, const auto& b) {
            if (a.second.total_bytes() != b.second.total_bytes()) {
              return a.second.total_bytes() < b.second.total_bytes();
            }
            return b.first < a.first;
          });
      if (!(view.top_groups.front().group == heaviest->first)) {
        return at + "top-ranked group " + view.top_groups.front().group.label() +
               " != truth " + heaviest->first.label();
      }
    }
  }
  return {};
}

}  // namespace

int main(int argc, char** argv) {
  const ArgParser args(argc, argv);
  const auto seed = std::uint64_t(args.get_int("seed", 42));
  const auto ingest_per_node = std::size_t(args.get_int("ingest-per-node", 40));
  const auto overhead_periods = int(args.get_int("overhead-periods", 45));
  const double budget_pct = double(args.get_int("budget-pct", 10));

  std::vector<std::size_t> sizes;
  {
    std::string csv = args.get("sizes", "16,64,256");
    for (std::size_t pos = 0; pos < csv.size();) {
      const std::size_t comma = csv.find(',', pos);
      const std::string tok = csv.substr(pos, comma - pos);
      if (!tok.empty()) sizes.push_back(std::size_t(std::stoul(tok)));
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
  }
  if (sizes.empty()) {
    std::fprintf(stderr, "no sizes given\n");
    return 1;
  }

  bool ok = true;
  std::vector<SizeResult> results;
  std::uint64_t census_bytes = 0, wire_bytes = 0, census_records = 0;
  double overhead_ratio = -1;
  std::size_t trace_nodes = 0;
  bool trace_ok = false;

  std::printf("# Census ablation: convergence + view accuracy at");
  for (const auto n : sizes) std::printf(" %zu", n);
  std::printf(" nodes; overhead + trace gates at %zu\n", sizes.front());
  std::printf("%-8s %-10s %-14s %-12s %-8s\n", "servers", "converge",
              "churn_rounds", "max_records", "view");

  for (std::size_t si = 0; si < sizes.size(); ++si) {
    const std::size_t servers = sizes[si];
    const auto cfg = census_config(servers, seed);
    // Presence converges via the epidemic push; the bound leaves room
    // for the round-robin backfill to cover big tables too.
    const int bound = int(std::max<std::size_t>(48, 3 * servers));
    ChurnSim sim(cfg);
    sim.start();
    ingest(sim, 4 * servers, /*salt=*/si + 1);

    SizeResult r;
    r.servers = servers;
    r.converge_rounds = run_until_converged(sim, servers, bound);
    if (r.converge_rounds < 0) {
      std::fprintf(stderr, "FAIL %zu nodes: census not converged in %d "
                           "periods\n", servers, bound);
      ok = false;
    }

    // Kill + revive churn, then require reconvergence and a view that
    // matches ground truth after the gauges settle.
    const ServerId victim{servers / 2};
    sim.kill(victim);
    int rounds = run_until_converged(sim, servers, bound);
    sim.revive(victim);
    const int back = run_until_converged(sim, servers, bound);
    r.churn_rounds = (rounds < 0 || back < 0) ? -1 : rounds + back;
    if (r.churn_rounds < 0) {
      std::fprintf(stderr, "FAIL %zu nodes: census lost convergence "
                           "across kill/revive\n", servers);
      ok = false;
    }
    // Settle: every node re-folds and the last gauge change propagates.
    sim.run_for(SimTime::from_seconds(
        double(2 * cfg.census.refresh_periods + bound / 4)));
    r.view_err = check_views(sim, servers);
    r.view_ok = r.view_err.empty();
    if (!r.view_ok) {
      std::fprintf(stderr, "FAIL %zu nodes: view mismatch: %s\n", servers,
                   r.view_err.c_str());
      ok = false;
    }

    std::printf("%-8zu %-10d %-14d %-12zu %-8s\n", servers,
                r.converge_rounds, r.churn_rounds,
                cfg.membership.census_max_records,
                r.view_ok ? "ok" : "MISMATCH");
    results.push_back(r);

    if (si != 0) continue;

    // --- Overhead gate (canonical size) ------------------------------
    // Steady ingest at a fixed per-node rate; the census payload must
    // stay a small fraction of everything on the wire.
    sim.cluster().reset_stats();
    sim.cluster().set_wire_metering(true);
    for (int p = 0; p < overhead_periods; ++p) {
      ingest(sim, ingest_per_node * servers, /*salt=*/1000 + p);
      sim.run_for(sim.protocol_period());
    }
    sim.cluster().set_wire_metering(false);
    const auto stats = sim.cluster().total_stats();
    census_bytes = stats.census_bytes;
    wire_bytes = stats.wire_bytes;
    census_records = stats.census_records;
    overhead_ratio =
        wire_bytes == 0 ? 1.0 : double(census_bytes) / double(wire_bytes);
    std::printf("# overhead: %llu census bytes / %llu wire bytes = %.2f%% "
                "(budget %.0f%%), %llu records delivered\n",
                (unsigned long long)census_bytes,
                (unsigned long long)wire_bytes, 100 * overhead_ratio,
                budget_pct, (unsigned long long)census_records);
    if (census_records == 0 || overhead_ratio > budget_pct / 100.0) {
      std::fprintf(stderr, "FAIL: census overhead %.2f%% over the %.0f%% "
                           "budget (or no records flowed)\n",
                   100 * overhead_ratio, budget_pct);
      ok = false;
    }

    // --- Trace-stitching gate (canonical size) -----------------------
    auto& tracer = obs::Hub::global().tracer;
    tracer.clear();
    tracer.set_enabled(true);
    {
      ClashClient client(sim.cluster().clash_config(),
                         sim.cluster().client_env(ServerId{0}),
                         sim.cluster().hasher());
      AcceptObject obj;
      obj.key = Key(0b1011011011, kWidth);
      obj.kind = ObjectKind::kQuery;
      obj.query_id = QueryId{0xC0FFEE};
      obj.trace_id = 0xC1D2E3F4A5B60708ULL;
      if (!client.insert(obj).ok) {
        std::fprintf(stderr, "FAIL: traced query not accepted\n");
        ok = false;
      }
    }
    sim.run_for(SimTime::from_seconds(2));  // repl append flush + apply
    tracer.set_enabled(false);
    std::set<std::uint64_t> pids;
    bool saw_ingest = false, saw_apply = false;
    for (const auto& span : tracer.spans()) {
      if (span.trace_id != 0xC1D2E3F4A5B60708ULL) continue;
      pids.insert(span.pid);
      saw_ingest |= span.kind == obs::SpanKind::kIngest;
      saw_apply |= span.kind == obs::SpanKind::kReplApply;
    }
    trace_nodes = pids.size();
    trace_ok = trace_nodes >= 2 && saw_ingest && saw_apply;
    std::printf("# trace: query 0xC1D2E3F4A5B60708 left spans on %zu "
                "node(s), ingest=%d repl_apply=%d\n",
                trace_nodes, int(saw_ingest), int(saw_apply));
    if (!trace_ok) {
      std::fprintf(stderr, "FAIL: traced query did not stitch across >= 2 "
                           "nodes\n");
      ok = false;
    }
  }

  std::string json = "{\n  \"bench\": \"abl_census\",\n  \"sizes\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    char line[256];
    std::snprintf(line, sizeof(line),
                  "    %s{\"servers\": %zu, \"converge_rounds\": %d, "
                  "\"churn_rounds\": %d, \"view_ok\": %s}",
                  i == 0 ? "" : ",", r.servers, r.converge_rounds,
                  r.churn_rounds, r.view_ok ? "true" : "false");
    json += line;
    json += "\n";
  }
  json += "  ],\n";
  json += "  \"census_bytes\": " + std::to_string(census_bytes) + ",\n";
  json += "  \"wire_bytes\": " + std::to_string(wire_bytes) + ",\n";
  json += "  \"census_records\": " + std::to_string(census_records) + ",\n";
  json += "  \"overhead_pct\": " +
          std::to_string(overhead_ratio < 0 ? -1.0 : 100 * overhead_ratio) +
          ",\n";
  json += "  \"trace_nodes\": " + std::to_string(trace_nodes) + ",\n";
  json += "  \"trace_ok\": " + std::string(trace_ok ? "true" : "false") +
          ",\n";
  json += "  \"passed\": " + std::string(ok ? "true" : "false") + "\n}\n";

  std::printf("\n# expectation: census tables converge within the bound at "
              "every size, every view matches ground truth after churn, "
              "census stays within %.0f%% of wire bytes, and one traced "
              "query stitches across nodes.\n", budget_pct);

  obs::maybe_embed_metrics(args, json, obs::Hub::global().registry);
  if (!write_json_artifact(args, json)) return 1;
  return ok ? 0 : 1;
}
