// Durability ablation: cold-restart recovery across the three
// durability modes. Loads a replicated cluster, crash+restarts the
// busiest server, and measures what the restart costs — network bytes
// moved during recovery, records replayed from disk, recovery wall
// time, and state kept. Also drives the two disk-damage paths: a
// simulated torn WAL tail (recovers to the last complete record, then
// the replica set streams the lost suffix), and a real kill -9 of a
// forked writer process over storage::FileBackend (run under ASan in
// CI).
//
// Self-gating: kWalSnapshot must recover every group of the killed
// node from local disk with zero lost queries and strictly fewer
// network bytes than the in-memory pull path (kNone), and the torn
// tail must recover to the last complete record.
//
// Usage: abl_durability [--servers=16] [--sources=3000] [--queries=600]
//                       [--seed=42] [--json=PATH] [--no-kill9]
#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <map>
#include <string>

#include "clash/client.hpp"
#include "common/argparse.hpp"
#include "obs/expose.hpp"
#include "obs/hub.hpp"
#include "common/rng.hpp"
#include "sim/cluster.hpp"
#include "storage/recovery.hpp"
#include "storage/store.hpp"

using namespace clash;
using namespace clash::sim;

namespace {

struct RunResult {
  const char* mode;
  std::uint64_t recovery_wire_bytes = 0;  // crash->recovered window
  std::uint64_t groups_lost = 0;
  std::uint64_t records_replayed = 0;
  std::uint64_t snapshots_loaded = 0;
  double recovery_ms = 0;  // restart_server wall time (includes replay)
  double streams_kept_pct = 0;
  double queries_kept_pct = 0;
  std::uint64_t disk_bytes = 0;  // simulated-disk footprint at crash
};

const char* mode_name(ClashConfig::DurabilityMode mode) {
  switch (mode) {
    case ClashConfig::DurabilityMode::kNone:
      return "none";
    case ClashConfig::DurabilityMode::kWal:
      return "wal";
    case ClashConfig::DurabilityMode::kWalSnapshot:
      return "walsnap";
  }
  return "?";
}

SimCluster::Config cluster_config(ClashConfig::DurabilityMode mode,
                                  std::size_t n_servers,
                                  std::uint64_t seed) {
  SimCluster::Config cfg;
  cfg.num_servers = n_servers;
  cfg.seed = seed;
  cfg.clash.key_width = 24;
  cfg.clash.initial_depth = 4;
  cfg.clash.capacity = 1e9;  // isolate durability from splitting
  cfg.clash.replication_factor = 2;
  cfg.clash.replication_mode = ClashConfig::ReplicationMode::kLog;
  cfg.clash.durability_mode = mode;
  cfg.clash.fsync_policy = ClashConfig::FsyncPolicy::kPerAppend;
  cfg.clash.wal_segment_bytes = 64 * 1024;
  // Low enough that groups cross several checkpoint boundaries under
  // the bench load — the knob the kWal/kWalSnapshot replay comparison
  // turns on.
  cfg.clash.log_compact_threshold = 64;
  return cfg;
}

ServerId busiest_server(SimCluster& cluster) {
  std::map<std::uint64_t, std::size_t> groups_of;
  for (const auto& [group, owner] : cluster.owner_index()) {
    groups_of[owner.value]++;
  }
  ServerId victim{0};
  std::size_t best = 0;
  for (const auto& [id, n] : groups_of) {
    if (n > best) {
      best = n;
      victim = ServerId{id};
    }
  }
  return victim;
}

RunResult run_one(ClashConfig::DurabilityMode mode, std::size_t n_servers,
                  std::size_t n_sources, std::size_t n_queries,
                  std::uint64_t seed, std::uint32_t torn_tail_bytes = 0) {
  auto cfg = cluster_config(mode, n_servers, seed);
  if (torn_tail_bytes > 0) {
    cfg.clash.fsync_policy = ClashConfig::FsyncPolicy::kNever;
  }
  SimCluster cluster(cfg);
  cluster.bootstrap();

  ClashClient client(cluster.clash_config(), cluster.client_env(ServerId{0}),
                     cluster.hasher());
  Rng rng(seed);
  for (std::size_t i = 0; i < n_sources; ++i) {
    AcceptObject obj;
    obj.key = Key(rng.next() & 0xFFFFFF, 24);
    obj.kind = ObjectKind::kData;
    obj.source = ClientId{i};
    obj.stream_rate = 1;
    if (!client.insert(obj).ok) std::abort();
  }
  for (std::size_t i = 0; i < n_queries; ++i) {
    AcceptObject obj;
    obj.key = Key(rng.next() & 0xFFFFFF, 24);
    obj.kind = ObjectKind::kQuery;
    obj.query_id = QueryId{i};
    if (!client.insert(obj).ok) std::abort();
  }
  cluster.set_now(SimTime::from_minutes(5));
  cluster.run_all_load_checks();

  const ServerId victim = busiest_server(cluster);
  if (auto* backend = cluster.storage_backend(victim)) {
    if (torn_tail_bytes > 0) {
      backend->set_crash_fault(
          storage::MemBackend::CrashFault{false, torn_tail_bytes});
    }
  }

  RunResult r{};
  r.mode = mode_name(mode);
  if (auto* backend = cluster.storage_backend(victim)) {
    r.disk_bytes = backend->bytes_stored();
  }

  cluster.set_wire_metering(true);
  const auto before = cluster.total_stats();
  cluster.crash_server(victim);
  const auto t0 = std::chrono::steady_clock::now();
  cluster.restart_server(victim);
  const auto t1 = std::chrono::steady_clock::now();
  const auto delta = cluster.total_stats() - before;
  cluster.set_wire_metering(false);

  r.recovery_wire_bytes = delta.wire_bytes;
  r.groups_lost = delta.groups_lost;
  r.recovery_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  if (auto* store = cluster.storage_of(victim)) {
    r.records_replayed = store->recovery_stats().records_replayed;
    r.snapshots_loaded = store->recovery_stats().snapshots_loaded;
  }

  std::size_t streams = 0;
  std::size_t queries = 0;
  for (std::size_t i = 0; i < n_servers; ++i) {
    if (!cluster.is_alive(ServerId{i})) continue;
    streams += cluster.server(ServerId{i}).total_streams();
    queries += cluster.server(ServerId{i}).total_queries();
  }
  r.streams_kept_pct = 100.0 * double(streams) / double(n_sources);
  r.queries_kept_pct =
      n_queries == 0 ? 100.0 : 100.0 * double(queries) / double(n_queries);
  if (const auto err = cluster.check_invariants()) {
    std::fprintf(stderr, "INVARIANT VIOLATION: %s\n", err->c_str());
    std::abort();
  }
  return r;
}

// --- kill -9 over real files -------------------------------------------

/// Child process: appends ops through a durable ClashServer until
/// killed. Never returns.
[[noreturn]] void kill9_child(const std::string& dir) {
  class NullEnv final : public ServerEnv {
   public:
    dht::LookupResult dht_lookup(dht::HashKey) override {
      return dht::LookupResult{ServerId{0}, 0};
    }
    void send(ServerId, const Message&) override {}
    [[nodiscard]] SimTime now() const override { return SimTime{0}; }
  };

  ClashConfig cfg;
  cfg.key_width = 16;
  cfg.initial_depth = 0;
  cfg.capacity = 1e12;
  cfg.durability_mode = ClashConfig::DurabilityMode::kWalSnapshot;
  cfg.fsync_policy = ClashConfig::FsyncPolicy::kPerAppend;
  cfg.log_compact_threshold = 64;

  storage::FileBackend backend(dir);
  storage::NodeStore store(backend, storage::NodeStore::Config::from(cfg));
  NullEnv env;
  ClashServer server(ServerId{0}, cfg, env,
                     dht::KeyHasher(32, dht::KeyHasher::Algo::kMix64, 0));
  server.set_storage(&store);
  ServerTableEntry entry;
  entry.group = KeyGroup::root(16);
  entry.root = true;
  entry.active = true;
  server.install_entry(entry);

  Rng rng(99);
  for (std::uint64_t i = 0;; ++i) {
    AcceptObject obj;
    obj.key = Key(rng.next() & 0xFFFF, 16);
    obj.kind = ObjectKind::kData;
    obj.source = ClientId{i % 512};
    obj.stream_rate = 1;
    (void)server.handle_accept_object(obj);
  }
}

struct Kill9Result {
  bool ok = false;
  std::uint64_t records_replayed = 0;
  std::uint64_t head_seq = 0;
  std::uint64_t torn_tails = 0;
};

void remove_store_dir(const std::string& dir) {
  storage::FileBackend backend(dir);
  for (const char* sub : {"wal", "snap"}) {
    for (const auto& path : backend.list(sub)) backend.remove_file(path);
    ::rmdir((dir + "/" + sub).c_str());
  }
  ::rmdir(dir.c_str());
}

Kill9Result run_kill9() {
  char dir_template[] = "/tmp/clash_abl_durability_XXXXXX";
  if (::mkdtemp(dir_template) == nullptr) return {};
  const std::string dir = dir_template;

  const pid_t pid = ::fork();
  if (pid < 0) return {};
  if (pid == 0) kill9_child(dir);  // never returns

  // Wait until the writer has a healthy WAL going, then kill -9 it
  // mid-load — very likely mid-write.
  const std::string seg0 = dir + "/wal/00000000.seg";
  for (int spin = 0; spin < 2000; ++spin) {
    struct stat st{};
    if (::stat(seg0.c_str(), &st) == 0 && st.st_size > 96 * 1024) break;
    ::usleep(2000);
  }
  ::kill(pid, SIGKILL);
  int status = 0;
  ::waitpid(pid, &status, 0);

  storage::FileBackend backend(dir);
  const auto image = storage::recover_image(backend, "wal", "snap");
  Kill9Result r;
  r.records_replayed = image.stats.records_replayed;
  r.torn_tails = image.stats.torn_tails;
  if (image.groups.size() == 1) {
    const auto& g = image.groups.begin()->second;
    r.head_seq = g.head.seq;
    // The store must have made real progress and recovered a
    // consistent prefix: head chains snapshot + replayed records.
    r.ok = g.head.seq > 0 && !g.state.streams.empty();
  }
  remove_store_dir(dir);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const ArgParser args(argc, argv);
  const auto n_servers = std::size_t(args.get_int("servers", 16));
  const auto n_sources = std::size_t(args.get_int("sources", 3000));
  const auto n_queries = std::size_t(args.get_int("queries", 600));
  const auto seed = std::uint64_t(args.get_int("seed", 42));
  const bool kill9 = !args.get_bool("no-kill9", false);

  std::printf("# Durability ablation: crash + restart the busiest of %zu "
              "servers under %zu streams + %zu queries (repl factor 2, "
              "log mode)\n",
              n_servers, n_sources, n_queries);
  std::printf("%-9s %14s %12s %10s %10s %12s %14s %14s\n", "mode",
              "recov_bytes", "disk_bytes", "replayed", "snaps",
              "recov_ms", "streams_kept_%", "queries_kept_%");

  std::string json = "{\n  \"bench\": \"abl_durability\",\n  \"runs\": [\n";
  std::map<std::string, RunResult> results;
  bool first = true;
  for (const auto mode : {ClashConfig::DurabilityMode::kNone,
                          ClashConfig::DurabilityMode::kWal,
                          ClashConfig::DurabilityMode::kWalSnapshot}) {
    const RunResult r =
        run_one(mode, n_servers, n_sources, n_queries, seed);
    results[r.mode] = r;
    std::printf("%-9s %14llu %12llu %10llu %10llu %12.2f %14.1f %14.1f\n",
                r.mode, (unsigned long long)r.recovery_wire_bytes,
                (unsigned long long)r.disk_bytes,
                (unsigned long long)r.records_replayed,
                (unsigned long long)r.snapshots_loaded, r.recovery_ms,
                r.streams_kept_pct, r.queries_kept_pct);
    char line[384];
    std::snprintf(
        line, sizeof(line),
        "    %s{\"mode\": \"%s\", \"recovery_wire_bytes\": %llu, "
        "\"disk_bytes\": %llu, \"records_replayed\": %llu, "
        "\"snapshots_loaded\": %llu, \"recovery_ms\": %.3f, "
        "\"groups_lost\": %llu, \"streams_kept_pct\": %.1f, "
        "\"queries_kept_pct\": %.1f}",
        first ? "" : ",", r.mode,
        (unsigned long long)r.recovery_wire_bytes,
        (unsigned long long)r.disk_bytes,
        (unsigned long long)r.records_replayed,
        (unsigned long long)r.snapshots_loaded, r.recovery_ms,
        (unsigned long long)r.groups_lost, r.streams_kept_pct,
        r.queries_kept_pct);
    json += line;
    json += "\n";
    first = false;
  }

  // Torn-tail scenario: no fsync, the crash cuts a record mid-write;
  // recovery stops at the last complete record and the replica set
  // streams the divergent suffix.
  const RunResult torn =
      run_one(ClashConfig::DurabilityMode::kWalSnapshot, n_servers,
              n_sources, n_queries, seed, /*torn_tail_bytes=*/41);
  std::printf("%-9s %14llu %12llu %10llu %10llu %12.2f %14.1f %14.1f\n",
              "torntail", (unsigned long long)torn.recovery_wire_bytes,
              (unsigned long long)torn.disk_bytes,
              (unsigned long long)torn.records_replayed,
              (unsigned long long)torn.snapshots_loaded, torn.recovery_ms,
              torn.streams_kept_pct, torn.queries_kept_pct);
  {
    char line[384];
    std::snprintf(
        line, sizeof(line),
        "    ,{\"mode\": \"torntail\", \"recovery_wire_bytes\": %llu, "
        "\"records_replayed\": %llu, \"groups_lost\": %llu, "
        "\"streams_kept_pct\": %.1f, \"queries_kept_pct\": %.1f}",
        (unsigned long long)torn.recovery_wire_bytes,
        (unsigned long long)torn.records_replayed,
        (unsigned long long)torn.groups_lost, torn.streams_kept_pct,
        torn.queries_kept_pct);
    json += line;
    json += "\n";
  }

  Kill9Result k9;
  if (kill9) {
    k9 = run_kill9();
    std::printf("\n# kill -9 over real files: recovered=%s, replayed %llu "
                "records to head seq %llu (torn tails: %llu)\n",
                k9.ok ? "yes" : "NO",
                (unsigned long long)k9.records_replayed,
                (unsigned long long)k9.head_seq,
                (unsigned long long)k9.torn_tails);
    char line[256];
    std::snprintf(line, sizeof(line),
                  "    ,{\"mode\": \"kill9\", \"ok\": %s, "
                  "\"records_replayed\": %llu, \"head_seq\": %llu, "
                  "\"torn_tails\": %llu}",
                  k9.ok ? "true" : "false",
                  (unsigned long long)k9.records_replayed,
                  (unsigned long long)k9.head_seq,
                  (unsigned long long)k9.torn_tails);
    json += line;
    json += "\n";
  }
  json += "  ]\n}\n";

  std::printf(
      "\n# expectation: kNone pulls the dead node's groups over the "
      "network (snapshot chunks); kWal/kWalSnapshot recover from local "
      "disk and move only anti-entropy probes + the outbound "
      "re-replication both paths pay. kWalSnapshot replays only the "
      "post-checkpoint tail.\n");

  // --- Acceptance gates -------------------------------------------------
  const RunResult& walsnap = results["walsnap"];
  const RunResult& none = results["none"];
  bool ok = true;
  if (walsnap.groups_lost != 0 || walsnap.streams_kept_pct < 100.0 ||
      walsnap.queries_kept_pct < 100.0) {
    std::fprintf(stderr, "FAIL: kWalSnapshot restart lost state\n");
    ok = false;
  }
  if (walsnap.recovery_wire_bytes >= none.recovery_wire_bytes) {
    std::fprintf(stderr,
                 "FAIL: local-disk recovery moved %llu bytes, not fewer "
                 "than the network pull's %llu\n",
                 (unsigned long long)walsnap.recovery_wire_bytes,
                 (unsigned long long)none.recovery_wire_bytes);
    ok = false;
  }
  if (results["wal"].records_replayed <= walsnap.records_replayed) {
    std::fprintf(stderr,
                 "FAIL: checkpointing did not bound replay (wal %llu <= "
                 "walsnap %llu)\n",
                 (unsigned long long)results["wal"].records_replayed,
                 (unsigned long long)walsnap.records_replayed);
    ok = false;
  }
  if (torn.queries_kept_pct < 100.0 || torn.groups_lost != 0) {
    std::fprintf(stderr, "FAIL: torn tail lost state despite replicas\n");
    ok = false;
  }
  if (kill9 && !k9.ok) {
    std::fprintf(stderr, "FAIL: kill -9 recovery came back empty\n");
    ok = false;
  }

  obs::maybe_embed_metrics(args, json, obs::Hub::global().registry);
  if (!write_json_artifact(args, json)) return 1;
  return ok ? 0 : 1;
}
