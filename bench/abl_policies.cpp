// Ablations over CLASH's design choices (DESIGN.md Section 6):
//   1. split-selection policy (hottest / random / most-keys)
//   2. consolidation on/off
//   3. overload/underload threshold sweep
//   4. splits-per-check
//   5. power-of-two-choices baseline (server-choice balancing cannot
//      subdivide a hot group)
//
// Runs a scaled-down workload-C (worst skew) scenario for each variant.
//
// Usage: abl_policies [--servers=64] [--clients=0.05] [--minutes=40]
//        [--seed=42] [--json=PATH]
#include <cstdio>
#include <string>
#include <functional>

#include "common/argparse.hpp"
#include "obs/expose.hpp"
#include "obs/hub.hpp"
#include "sim/experiment.hpp"

using namespace clash;
using namespace clash::sim;

namespace {

struct Row {
  const char* name;
  std::function<void(RuntimeConfig&)> tweak;
  Mode mode = Mode::kClash;
  unsigned fixed_depth = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const ArgParser args(argc, argv);
  Scale scale;
  scale.servers = args.get_double("servers", 128) / 1000.0;
  scale.clients = args.get_double("clients", 0.1);
  const double minutes = args.get_double("minutes", 50);
  const auto seed = std::uint64_t(args.get_int("seed", 42));

  const Row rows[] = {
      {"clash/hottest (paper)", [](RuntimeConfig&) {}},
      {"clash/random-split",
       [](RuntimeConfig& rc) {
         rc.cluster.clash.split_policy = ClashConfig::SplitPolicy::kRandom;
       }},
      {"clash/most-keys-split",
       [](RuntimeConfig& rc) {
         rc.cluster.clash.split_policy = ClashConfig::SplitPolicy::kMostKeys;
       }},
      {"clash/no-consolidation",
       [](RuntimeConfig& rc) {
         rc.cluster.clash.enable_consolidation = false;
       }},
      {"clash/4-splits-per-check",
       [](RuntimeConfig& rc) { rc.cluster.clash.max_splits_per_check = 4; }},
      {"clash/tight-thresholds(.7/.4)",
       [](RuntimeConfig& rc) {
         rc.cluster.clash.overload_frac = 0.7;
         rc.cluster.clash.underload_frac = 0.4;
       }},
      {"clash/no-client-cache",
       [](RuntimeConfig& rc) { rc.p_jump = 1.0; }},
      {"baseline/power-of-two(d=6)", [](RuntimeConfig&) {},
       Mode::kPowerOfTwo, 6},
      {"baseline/dht(6)", [](RuntimeConfig&) {}, Mode::kFixedDepth, 6},
  };

  std::printf("# Ablation: %.0f min of workload C (heaviest skew), then "
              "%.0f min of workload A (load drains) — %.0f servers, %.0f "
              "sources\n",
              minutes, minutes, 1000 * scale.servers,
              100000 * scale.clients);
  std::printf("%-30s %11s %11s %11s %7s %7s %12s\n", "variant",
              "C:max_load%", "C:avg_load%", "A:servers", "splits", "merges",
              "msg/s/srv");

  std::string json = "{\n  \"bench\": \"abl_policies\",\n  \"runs\": [\n";
  bool json_first = true;
  for (const auto& row : rows) {
    RuntimeConfig rc = fig4_config(row.mode, row.fixed_depth, scale, seed);
    rc.phases = {{'C', SimTime::from_minutes(minutes)},
                 {'A', SimTime::from_minutes(minutes)}};
    row.tweak(rc);
    Runtime rt(std::move(rc));
    const RunResult r = rt.run();

    // Workload-C window (steady half) and the tail of the drain phase.
    const SimTime c_lo = SimTime::from_minutes(minutes / 2);
    const SimTime c_hi = SimTime::from_minutes(minutes);
    const SimTime a_lo = SimTime::from_minutes(2 * minutes - minutes / 4);
    const SimTime a_hi = SimTime::from_minutes(2 * minutes + 1);
    const auto servers = std::size_t(std::max(8.0, 1000 * scale.servers));
    std::printf("%-30s %11.1f %11.1f %11.1f %7llu %7llu %12.2f\n", row.name,
                r.max_load_pct.max_between(c_lo, c_hi),
                r.avg_load_pct.mean_between(c_lo, c_hi),
                r.active_servers.mean_between(a_lo, a_hi),
                (unsigned long long)r.totals.splits,
                (unsigned long long)r.totals.merges,
                r.phase_stats[0].msgs_per_sec_per_server(servers, true));
    char line[320];
    std::snprintf(line, sizeof(line),
                  "    %s{\"variant\": \"%s\", \"c_max_load_pct\": %.1f, "
                  "\"c_avg_load_pct\": %.1f, \"a_servers\": %.1f, "
                  "\"splits\": %llu, \"merges\": %llu, "
                  "\"msg_per_sec_per_srv\": %.2f}",
                  json_first ? "" : ",", row.name,
                  r.max_load_pct.max_between(c_lo, c_hi),
                  r.avg_load_pct.mean_between(c_lo, c_hi),
                  r.active_servers.mean_between(a_lo, a_hi),
                  (unsigned long long)r.totals.splits,
                  (unsigned long long)r.totals.merges,
                  r.phase_stats[0].msgs_per_sec_per_server(servers, true));
    json += line;
    json += "\n";
    json_first = false;
  }
  json += "  ]\n}\n";

  std::printf(
      "\n# expectations: hottest-split needs the fewest splits to cap max "
      "load; no-consolidation leaves servers inflated after the load "
      "drains (A:servers); power-of-two cannot cap max load under "
      "extreme skew (a hot group is indivisible for it); no-client-cache "
      "raises msg/s/srv\n");
  obs::maybe_embed_metrics(args, json, obs::Hub::global().registry);
  return write_json_artifact(args, json) ? 0 : 1;
}
