// Figure 4: server load, utilisation, depth variation and active
// servers for CLASH vs basic DHT(6/12/24) over the 6-hour A->B->C run.
//
// Prints all four panels as time-series tables plus the paper's headline
// summary rows. Defaults are scaled down to finish quickly; run with
// --full for the paper-scale experiment (1000 servers, 100k sources,
// 50k query clients, 2 h per workload).
//
// Usage: fig4_load_balance [--full] [--servers=N] [--clients=F]
//                          [--duration=F] [--seed=N]
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "common/argparse.hpp"
#include "sim/experiment.hpp"

using namespace clash;
using namespace clash::sim;

namespace {

struct SystemRun {
  std::string name;
  RunResult result;
};

void print_series(const char* title, const std::vector<SystemRun>& runs,
                  TimeSeries RunResult::*series) {
  std::printf("\n## %s\n", title);
  std::printf("%-10s", "t_hours");
  for (const auto& run : runs) std::printf(" %12s", run.name.c_str());
  std::printf("\n");
  const auto& base = (runs[0].result.*series).samples();
  for (std::size_t i = 0; i < base.size(); ++i) {
    std::printf("%-10.2f", base[i].t.hours());
    for (const auto& run : runs) {
      const auto& samples = (run.result.*series).samples();
      std::printf(" %12.1f", i < samples.size() ? samples[i].value : 0.0);
    }
    std::printf("\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  const ArgParser args(argc, argv);
  const bool full = args.get_bool("full", false);

  // Default: the paper's full 1000 servers (server count sets the
  // utilisation and active-server shapes) with fewer clients (capacity
  // auto-scales, so utilisation is preserved) and 1 h per workload.
  Scale scale;
  scale.servers = args.get_double("servers", 1000) / 1000.0;
  scale.clients = args.get_double("clients", full ? 1.0 : 0.1);
  scale.duration = args.get_double("duration", full ? 1.0 : 0.5);
  const auto seed = std::uint64_t(args.get_int("seed", 42));

  const std::size_t n_servers =
      std::size_t(std::max(8.0, 1000 * scale.servers));
  std::printf(
      "# Figure 4 reproduction: %zu servers, %.0f sources, %.0f query "
      "clients, %.2f h per workload (A->B->C)\n",
      n_servers, 100000 * scale.clients, 50000 * scale.clients,
      2.0 * scale.duration);

  struct System {
    const char* name;
    Mode mode;
    unsigned depth;
  };
  const System systems[] = {
      {"CLASH", Mode::kClash, 0},
      {"DHT(6)", Mode::kFixedDepth, 6},
      {"DHT(12)", Mode::kFixedDepth, 12},
      {"DHT(24)", Mode::kFixedDepth, 24},
  };

  // Ring positions per server: default log(S) ~ 8 (uniform hash-space
  // partitioning); --vs=1 shows bare Chord arcs.
  const auto virtual_servers = unsigned(args.get_int("vs", 8));

  std::vector<SystemRun> runs;
  for (const auto& sys : systems) {
    RuntimeConfig rc = fig4_config(sys.mode, sys.depth, scale, seed);
    rc.cluster.virtual_servers = virtual_servers;
    Runtime rt(std::move(rc));
    runs.push_back({sys.name, rt.run()});
    const auto& r = runs.back().result;
    std::fprintf(stderr, "[fig4] %s done: %llu events, %llu splits\n",
                 sys.name, (unsigned long long)r.events_processed,
                 (unsigned long long)r.totals.splits);
    if (!r.invariant_violation.empty()) {
      std::fprintf(stderr, "[fig4] INVARIANT VIOLATION (%s): %s\n", sys.name,
                   r.invariant_violation.c_str());
      return 1;
    }
  }

  print_series("Figure 4a: max server load (% of capacity)", runs,
               &RunResult::max_load_pct);
  print_series("Figure 4b: avg load of loaded servers (% of capacity)",
               runs, &RunResult::avg_load_pct);
  print_series("Figure 4d: active servers", runs, &RunResult::active_servers);

  std::printf("\n## Figure 4c: CLASH depth variation (starting depth = 6)\n");
  std::printf("%-10s %8s %8s %8s\n", "t_hours", "min", "avg", "max");
  const auto& clash = runs[0].result;
  for (std::size_t i = 0; i < clash.depth_avg.samples().size(); ++i) {
    std::printf("%-10.2f %8.0f %8.2f %8.0f\n",
                clash.depth_avg.samples()[i].t.hours(),
                clash.depth_min.samples()[i].value,
                clash.depth_avg.samples()[i].value,
                clash.depth_max.samples()[i].value);
  }

  // Headline summary rows (one phase == one third of the run).
  std::printf("\n## Summary (per workload phase, steady state = 2nd half "
              "of phase)\n");
  std::printf("%-10s %-9s %14s %14s %14s\n", "system", "workload",
              "max_load_%", "avg_load_%", "servers_used");
  SimTime t0{0};
  const char* phases[] = {"A", "B", "C"};
  const SimTime phase_len = SimTime::from_hours(2.0 * scale.duration);
  for (int p = 0; p < 3; ++p) {
    const SimTime lo = t0 + SimTime(phase_len.usec / 2);
    const SimTime hi = t0 + phase_len;
    for (const auto& run : runs) {
      std::printf("%-10s %-9s %14.1f %14.1f %14.1f\n", run.name.c_str(),
                  phases[p], run.result.max_load_pct.max_between(lo, hi),
                  run.result.avg_load_pct.mean_between(lo, hi),
                  run.result.active_servers.mean_between(lo, hi));
    }
    t0 = t0 + phase_len;
  }

  const double clash_servers = runs[0].result.active_servers.mean_between(
      SimTime(phase_len.usec / 2), phase_len);
  const double dht12_servers = runs[2].result.active_servers.mean_between(
      SimTime(phase_len.usec / 2), phase_len);
  std::printf(
      "\n# paper claims: CLASH max load < 90%% after transient; avg load "
      "~50-60%%; CLASH uses ~70-80 of 1000 servers (A), DHT(12) ~450-800, "
      "DHT(24) ~1000; server reduction vs DHT(12): measured %.0f%%\n",
      dht12_servers > 0 ? 100.0 * (1.0 - clash_servers / dht12_servers) : 0);
  std::printf("# depth-search: avg %.2f probes/search (log2(24)=4.58), "
              "%.1f%% cache hits\n",
              runs[0].result.probes_per_search.mean(),
              100.0 * double(runs[0].result.cache_hits) /
                  double(std::max<std::uint64_t>(1, runs[0].result.searches)));
  return 0;
}
