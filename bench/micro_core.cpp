// Microbenchmarks (google-benchmark) for the hot code paths: key ops,
// ServerTable lookups, hashing, Chord routing, client resolution, and
// split/merge cost.
#include <benchmark/benchmark.h>

#include <memory>

#include "clash/client.hpp"
#include "clash/server_table.hpp"
#include "common/rng.hpp"
#include "common/sha1.hpp"
#include "dht/chord.hpp"
#include "sim/cluster.hpp"

using namespace clash;

namespace {

void BM_Shape(benchmark::State& state) {
  Rng rng(1);
  const Key k(rng.next() & 0xFFFFFF, 24);
  unsigned d = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(shape(k, d % 25));
    ++d;
  }
}
BENCHMARK(BM_Shape);

void BM_KeyGroupContains(benchmark::State& state) {
  const KeyGroup g = KeyGroup::of(Key(0x123456, 24), 9);
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(g.contains(Key(rng.next() & 0xFFFFFF, 24)));
  }
}
BENCHMARK(BM_KeyGroupContains);

void BM_Sha1Hash64(benchmark::State& state) {
  std::uint64_t v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha1::hash64(v++));
  }
}
BENCHMARK(BM_Sha1Hash64);

void BM_KeyHasher(benchmark::State& state) {
  const auto algo = state.range(0) == 0 ? dht::KeyHasher::Algo::kMix64
                                        : dht::KeyHasher::Algo::kSha1;
  const dht::KeyHasher hasher(32, algo);
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hasher.hash_key(Key(rng.next() & 0xFFFFFF, 24)));
  }
}
BENCHMARK(BM_KeyHasher)->Arg(0)->Arg(1);

ServerTable make_table(std::size_t entries) {
  ServerTable t(24);
  Rng rng(7);
  while (t.size() < entries) {
    const unsigned depth = 1 + unsigned(rng.below(24));
    const KeyGroup g = KeyGroup::of(Key(rng.next() & 0xFFFFFF, 24), depth);
    if (t.find(g) != nullptr) continue;
    t.insert({g, false, ServerId{0}, ServerId{1}, false});
  }
  return t;
}

void BM_TableLongestPrefix(benchmark::State& state) {
  const auto t = make_table(std::size_t(state.range(0)));
  Rng rng(8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        t.longest_prefix_match(Key(rng.next() & 0xFFFFFF, 24)));
  }
}
BENCHMARK(BM_TableLongestPrefix)->Arg(8)->Arg(64)->Arg(512);

void BM_TableActiveLookup(benchmark::State& state) {
  ServerTable t(24);
  Rng rng(9);
  // Prefix-free actives: split a trie path.
  KeyGroup g = KeyGroup::root(24);
  for (int i = 0; i < state.range(0); ++i) {
    t.insert({g.right_child(), false, ServerId{0}, ServerId{}, true});
    g = g.left_child();
  }
  t.insert({g, false, ServerId{0}, ServerId{}, true});
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.active_entry_for(Key(rng.next() & 0xFFFFFF, 24)));
  }
}
BENCHMARK(BM_TableActiveLookup)->Arg(4)->Arg(16)->Arg(23);

void BM_ChordLookup(benchmark::State& state) {
  dht::ChordRing::Config cfg;
  cfg.hash_bits = 32;
  dht::ChordRing ring(cfg);
  const auto n = std::uint64_t(state.range(0));
  for (std::uint64_t i = 0; i < n; ++i) ring.add_server(ServerId{i});
  Rng rng(10);
  std::uint64_t hops = 0, lookups = 0;
  for (auto _ : state) {
    const auto r = ring.lookup(dht::HashKey{rng.next() & 0xFFFFFFFF},
                               ServerId{rng.below(n)});
    hops += r.hops;
    ++lookups;
    benchmark::DoNotOptimize(r);
  }
  state.counters["avg_hops"] =
      benchmark::Counter(double(hops) / double(lookups));
}
BENCHMARK(BM_ChordLookup)->Arg(100)->Arg(1000)->Arg(10000);

void BM_ClientResolve(benchmark::State& state) {
  sim::SimCluster::Config cfg;
  cfg.num_servers = 128;
  cfg.clash.key_width = 24;
  cfg.clash.initial_depth = 6;
  cfg.clash.capacity = 1e18;
  sim::SimCluster cluster(cfg);
  cluster.bootstrap();
  // Deepen the tree a bit.
  Rng splitter(11);
  for (int i = 0; i < 200; ++i) {
    const Key k(splitter.next() & 0xFFFFFF, 24);
    const auto g = cluster.find_active_group(k);
    if (!g || g->depth() >= 24) continue;
    (void)cluster.server(*cluster.find_owner(k)).force_split(*g);
  }
  ClashClient::Options opts;
  opts.use_cache = state.range(0) != 0;
  ClashClient client(cluster.clash_config(), cluster.client_env(ServerId{0}),
                     cluster.hasher(), opts, 5);
  Rng rng(12);
  // With cache: resolve the same small working set repeatedly.
  std::vector<Key> keys;
  for (int i = 0; i < 16; ++i) keys.emplace_back(rng.next() & 0xFFFFFF, 24);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(client.resolve(keys[i++ % keys.size()]));
  }
}
BENCHMARK(BM_ClientResolve)->Arg(0)->Arg(1);

void BM_SplitMergeCycle(benchmark::State& state) {
  sim::SimCluster::Config cfg;
  cfg.num_servers = 32;
  cfg.clash.key_width = 24;
  cfg.clash.initial_depth = 4;
  cfg.clash.capacity = 1e18;
  sim::SimCluster cluster(cfg);
  cluster.bootstrap();
  const Key k(0x800000, 24);
  for (auto _ : state) {
    const auto g = cluster.find_active_group(k);
    const auto owner = cluster.find_owner(k);
    (void)cluster.server(*owner).force_split(*g);
    // Merge straight back (children are cold): one load check on the
    // parent owner triggers consolidation.
    cluster.server(*owner).run_load_check();
    benchmark::DoNotOptimize(cluster.owner_index().size());
  }
}
BENCHMARK(BM_SplitMergeCycle);

}  // namespace

BENCHMARK_MAIN();
