// Partition ablation: drives the link-level fault matrix through four
// WAN failure scenarios against the log-replication engine under live
// SWIM membership —
//
//   split     symmetric split-brain (a minority quarter cut off)
//   oneway    asymmetric cut (the minority is heard by nobody)
//   lossy     every link drops 5% of messages
//   splitkill a server dies while the cluster is split
//
// with continuous queries registered before AND during the fault. The
// run self-gates: after the heal, every replica must converge to its
// owner's exact (epoch, seq) log head and zero queries may be lost at
// replication factor >= 2 — a non-converging scenario fails the
// process, so CI catches repair-path regressions without a human
// reading the JSON.
//
// Usage: abl_partition [--servers=16] [--queries=60] [--seed=42]
//                      [--fault-minutes=3] [--json=PATH]
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "clash/client.hpp"
#include "common/argparse.hpp"
#include "obs/expose.hpp"
#include "obs/hub.hpp"
#include "obs/postmortem.hpp"
#include "common/rng.hpp"
#include "sim/churn.hpp"

using namespace clash;
using namespace clash::sim;

namespace {

constexpr unsigned kWidth = 10;

struct ScenarioResult {
  const char* scenario;
  bool converged = false;
  double converge_minutes = 0;   // after the heal
  std::size_t queries_registered = 0;
  std::size_t queries_kept = 0;
  std::uint64_t link_drops = 0;
  std::uint64_t failovers = 0;
  std::uint64_t groups_lost = 0;
  std::uint64_t snapshot_aborts = 0;
  std::uint64_t offers_ignored = 0;
  std::uint64_t snapshot_chunks = 0;
  std::uint64_t repl_appends = 0;
};

ChurnSim::Config base_config(std::size_t servers, std::uint64_t seed) {
  ChurnSim::Config cfg;
  cfg.cluster.num_servers = servers;
  cfg.cluster.seed = seed;
  cfg.cluster.clash.key_width = kWidth;
  cfg.cluster.clash.initial_depth = 3;
  cfg.cluster.clash.capacity = 1e9;  // isolate replication from splitting
  cfg.cluster.clash.replication_factor = 2;
  cfg.cluster.clash.replication_mode = ClashConfig::ReplicationMode::kLog;
  cfg.protocol_period = SimTime::from_seconds(1);
  cfg.gossip_delay = SimTime::from_seconds(0.02);
  cfg.seed = seed * 31 + 7;
  return cfg;
}

std::vector<ServerId> minority(std::size_t servers) {
  std::vector<ServerId> side;
  for (std::size_t i = 0; i < servers / 4; ++i) {
    side.push_back(ServerId{i * 3 + 1});
  }
  return side;
}

std::size_t register_queries(ChurnSim& sim, std::size_t n,
                             std::uint64_t first_id) {
  ClashClient client(sim.cluster().clash_config(),
                     sim.cluster().client_env(ServerId{0}),
                     sim.cluster().hasher());
  Rng rng(first_id * 131 + 5);
  std::size_t registered = 0;
  for (std::size_t i = 0; i < n; ++i) {
    AcceptObject obj;
    obj.key = Key(rng.next() & ((1u << kWidth) - 1), kWidth);
    obj.kind = ObjectKind::kQuery;
    obj.query_id = QueryId{first_id + i};
    if (client.insert(obj).ok) ++registered;
  }
  return registered;
}

std::size_t live_queries(const SimCluster& cluster) {
  std::size_t total = 0;
  for (std::size_t i = 0; i < cluster.num_servers(); ++i) {
    if (cluster.is_alive(ServerId{i})) {
      total += cluster.server(ServerId{i}).total_queries();
    }
  }
  return total;
}

std::optional<std::string> heads_converged(const SimCluster& cluster) {
  for (const auto& [group, owner] : cluster.owner_index()) {
    const auto owner_head = cluster.server(owner).log_head(group);
    if (!owner_head) return "owner of " + group.label() + " has no log";
    for (std::size_t i = 0; i < cluster.num_servers(); ++i) {
      const ServerId id{i};
      if (!cluster.is_alive(id) || id == owner) continue;
      if (!cluster.server(id).has_replica(group)) continue;
      if (cluster.server(id).replica_head(group) != owner_head) {
        return group.label() + ": replica on s" + std::to_string(i) +
               " diverged";
      }
    }
  }
  return std::nullopt;
}

ScenarioResult run_scenario(const char* scenario, std::size_t servers,
                            std::size_t queries, std::uint64_t seed,
                            double fault_minutes) {
  ChurnSim sim(base_config(servers, seed));
  sim.start();
  // Dump target for the invariant abort and the main()-side gate: the
  // source must be removed before `sim` dies (the lambda captures it).
  obs::Postmortem& pm = obs::Postmortem::global();
  if (pm.dir().empty()) pm.set_dir(".");
  const std::uint64_t pm_src = obs::register_hub_source(
      pm, obs::Hub::global(), std::string("abl_partition-") + scenario,
      [&sim] { return sim.cluster().now().usec; });
  ScenarioResult r{};
  r.scenario = scenario;
  r.queries_registered = register_queries(sim, queries, 0);
  sim.run_for(SimTime::from_minutes(11));  // replication settles

  const auto side = minority(servers);
  const std::string name(scenario);
  if (name == "split" || name == "splitkill") {
    sim.partition(side);
  } else if (name == "oneway") {
    sim.one_way_partition(side);
  } else {
    sim.set_loss_rate(0.05);
  }
  if (name == "splitkill") {
    // A majority-side server dies mid-split; failover must still
    // recover every replicated group.
    sim.kill(ServerId{side.back().value + 1});
  }
  // The fault does not stop writes: clients keep registering.
  r.queries_registered += register_queries(sim, queries / 3, 100000);
  sim.run_for(SimTime::from_minutes(fault_minutes));

  sim.heal_partitions();
  const auto healed_at = sim.cluster().now();
  bool converged = false;
  // Anti-entropy runs on the 5-minute load checks: give it up to six
  // rounds after the heal before calling the scenario diverged.
  for (int minutes = 0; minutes < 31 && !converged; ++minutes) {
    sim.run_for(SimTime::from_minutes(1));
    converged = heads_converged(sim.cluster()) == std::nullopt &&
                live_queries(sim.cluster()) == r.queries_registered;
  }
  r.converged = converged;
  r.converge_minutes = (sim.cluster().now() - healed_at).minutes();
  r.queries_kept = live_queries(sim.cluster());

  const auto stats = sim.cluster().total_stats();
  r.link_drops = stats.link_drops;
  r.failovers = stats.failovers;
  r.groups_lost = stats.groups_lost;
  r.snapshot_aborts = stats.snapshot_aborts;
  r.offers_ignored = stats.snapshot_offers_ignored;
  r.snapshot_chunks = stats.snapshot_chunks;
  r.repl_appends = stats.repl_appends;

  if (const auto err = sim.cluster().check_invariants()) {
    std::fprintf(stderr, "INVARIANT VIOLATION (%s): %s\n", scenario,
                 err->c_str());
    pm.dump(std::string("abl_partition invariant (") + scenario + "): " +
            *err);
    std::abort();
  }
  if (!r.converged || r.queries_kept != r.queries_registered ||
      r.groups_lost != 0) {
    pm.dump(std::string("abl_partition gate failure: ") + scenario);
  }
  pm.remove_source(pm_src);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const ArgParser args(argc, argv);
  const auto servers = std::size_t(args.get_int("servers", 16));
  const auto queries = std::size_t(args.get_int("queries", 60));
  const auto seed = std::uint64_t(args.get_int("seed", 42));
  const double fault_minutes = double(args.get_int("fault-minutes", 3));

  std::printf("# Partition ablation: %zu servers, replication factor 2 "
              "(log mode), %.0f-minute faults\n",
              servers, fault_minutes);
  std::printf("%-10s %-9s %14s %13s %11s %9s %6s %13s %13s\n", "scenario",
              "converged", "converge_min", "queries_kept", "link_drops",
              "failover", "lost", "snap_aborts", "dup_offers");

  std::string json = "{\n  \"bench\": \"abl_partition\",\n  \"runs\": [\n";
  bool ok = true;
  bool first = true;
  for (const char* scenario : {"split", "oneway", "lossy", "splitkill"}) {
    const ScenarioResult r =
        run_scenario(scenario, servers, queries, seed, fault_minutes);
    std::printf("%-10s %-9s %14.1f %8zu/%-4zu %11llu %9llu %6llu %13llu "
                "%13llu\n",
                r.scenario, r.converged ? "yes" : "NO", r.converge_minutes,
                r.queries_kept, r.queries_registered,
                (unsigned long long)r.link_drops,
                (unsigned long long)r.failovers,
                (unsigned long long)r.groups_lost,
                (unsigned long long)r.snapshot_aborts,
                (unsigned long long)r.offers_ignored);
    char line[512];
    std::snprintf(
        line, sizeof(line),
        "    %s{\"scenario\": \"%s\", \"converged\": %s, "
        "\"converge_minutes\": %.1f, \"queries_registered\": %zu, "
        "\"queries_kept\": %zu, \"link_drops\": %llu, \"failovers\": %llu, "
        "\"groups_lost\": %llu, \"snapshot_aborts\": %llu, "
        "\"dup_offers_ignored\": %llu, \"snapshot_chunks\": %llu, "
        "\"repl_appends\": %llu}",
        first ? "" : ",", r.scenario, r.converged ? "true" : "false",
        r.converge_minutes, r.queries_registered, r.queries_kept,
        (unsigned long long)r.link_drops, (unsigned long long)r.failovers,
        (unsigned long long)r.groups_lost,
        (unsigned long long)r.snapshot_aborts,
        (unsigned long long)r.offers_ignored,
        (unsigned long long)r.snapshot_chunks,
        (unsigned long long)r.repl_appends);
    json += line;
    json += "\n";
    first = false;

    // Self-gate: at replication factor >= 2 every scenario must heal
    // to identical log heads with zero lost queries.
    if (!r.converged || r.queries_kept != r.queries_registered ||
        r.groups_lost != 0) {
      std::fprintf(stderr,
                   "FAIL: scenario %s did not converge cleanly "
                   "(%zu/%zu queries, %llu groups lost)\n",
                   r.scenario, r.queries_kept, r.queries_registered,
                   (unsigned long long)r.groups_lost);
      ok = false;
    }
  }
  json += "  ]\n}\n";

  std::printf("\n# expectation: every scenario converges after the heal — "
              "identical (epoch, seq) heads on all replicas, zero lost "
              "queries. snap_aborts > 0 under loss shows the nack-driven "
              "transfer restart at work; dup_offers shows assemblies "
              "surviving competing offers.\n");

  obs::maybe_embed_metrics(args, json, obs::Hub::global().registry);
  if (!write_json_artifact(args, json)) return 1;
  return ok ? 0 : 1;
}
