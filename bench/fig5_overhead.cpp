// Figure 5: CLASH communication overhead — messages/sec/server for
// workloads A/B/C, virtual stream lengths Ld in {50, 1000}, with and
// without query clients (state transfer).
//
// Defaults are scaled down; --full runs the paper-scale configuration.
//
// Usage: fig5_overhead [--full] [--servers=N] [--clients=F] [--duration=F]
#include <cstdio>
#include <vector>

#include "common/argparse.hpp"
#include "sim/experiment.hpp"

using namespace clash;
using namespace clash::sim;

int main(int argc, char** argv) {
  const ArgParser args(argc, argv);
  const bool full = args.get_bool("full", false);

  // Messages/sec/server depends on the client:server ratio, so both
  // scale together by default (keeping the paper's 100 sources and 50
  // query clients per server) while the duration shrinks.
  Scale scale;
  scale.servers = args.get_double("servers", full ? 1000 : 200) / 1000.0;
  scale.clients = args.get_double("clients", full ? 1.0 : 0.2);
  scale.duration = args.get_double("duration", full ? 1.0 : 0.15);
  const auto seed = std::uint64_t(args.get_int("seed", 42));

  const std::size_t n_servers =
      std::size_t(std::max(8.0, 1000 * scale.servers));
  const std::size_t n_queries = std::size_t(50000 * scale.clients);

  std::printf(
      "# Figure 5 reproduction: CLASH overhead, %zu servers, %.0f sources, "
      "%.2f h per workload\n",
      n_servers, 100000 * scale.clients, 2.0 * scale.duration);
  std::printf(
      "# columns: control = probes+replies+DHT hops+split/merge traffic; "
      "total adds state-transfer messages\n");

  struct Case {
    const char* label;
    double ld;
    std::size_t queries;
  };
  const Case cases[] = {
      {"no queries, Ld=50", 50, 0},
      {"no queries, Ld=1000", 1000, 0},
      {"50k queries, Ld=50", 50, n_queries},
      {"50k queries, Ld=1000", 1000, n_queries},
  };

  std::printf("\n%-24s %-9s %16s %16s %12s\n", "case", "workload",
              "control msg/s/srv", "total msg/s/srv", "state msgs");
  for (const auto& c : cases) {
    Runtime rt(fig5_config(c.ld, c.queries, scale, seed));
    const RunResult r = rt.run();
    if (!r.invariant_violation.empty()) {
      std::fprintf(stderr, "[fig5] INVARIANT VIOLATION: %s\n",
                   r.invariant_violation.c_str());
      return 1;
    }
    for (const auto& phase : r.phase_stats) {
      std::printf("%-24s %-9s %16.2f %16.2f %12llu\n", c.label,
                  phase.workload.c_str(),
                  phase.msgs_per_sec_per_server(n_servers, false),
                  phase.msgs_per_sec_per_server(n_servers, true),
                  (unsigned long long)phase.delta.state_transfer_msgs);
    }
    std::fprintf(stderr, "[fig5] %s done: %llu events\n", c.label,
                 (unsigned long long)r.events_processed);
  }

  std::printf(
      "\n# paper shape: <= ~10-12 msg/s/server across skews; overhead "
      "falls with larger Ld; query-state transfer adds only ~1-2 "
      "msg/s/server\n");
  return 0;
}
