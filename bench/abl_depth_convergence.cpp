// Section 5 claim: "clients usually converge to the true depth much
// faster than log(N)". Builds random CLASH trees of increasing depth
// and measures probes per fresh depth search, per guess policy.
//
// Usage: abl_depth_convergence [--keys=2000] [--seed=42] [--json=PATH]
#include <cstdio>
#include <string>

#include "clash/client.hpp"
#include "common/argparse.hpp"
#include "obs/expose.hpp"
#include "obs/hub.hpp"
#include "common/rng.hpp"
#include "sim/cluster.hpp"
#include "sim/metrics.hpp"

using namespace clash;
using namespace clash::sim;

namespace {

std::unique_ptr<SimCluster> make_tree(unsigned splits, std::uint64_t seed) {
  SimCluster::Config cfg;
  cfg.num_servers = 64;
  cfg.seed = seed;
  cfg.clash.key_width = 24;
  cfg.clash.initial_depth = 6;
  cfg.clash.capacity = 1e18;  // manual splits only
  auto cluster = std::make_unique<SimCluster>(cfg);
  cluster->bootstrap();
  Rng rng(seed * 31 + 7);
  for (unsigned i = 0; i < splits; ++i) {
    const Key k(rng.next() & 0xFFFFFF, 24);
    const auto group = cluster->find_active_group(k);
    if (!group || group->depth() >= 24) continue;
    const auto owner = cluster->find_owner(k);
    (void)cluster->server(*owner).force_split(*group);
  }
  return cluster;
}

}  // namespace

int main(int argc, char** argv) {
  const ArgParser args(argc, argv);
  const int keys = int(args.get_int("keys", 2000));
  const auto seed = std::uint64_t(args.get_int("seed", 42));

  std::string json =
      "{\n  \"bench\": \"abl_depth_convergence\",\n  \"runs\": [\n";
  bool json_first = true;
  std::printf("# Depth-search convergence vs tree size (N = 24, "
              "log2(N+1) = 4.64 is plain binary search)\n");
  std::printf("%-8s %-10s %-10s | %-21s | %-21s | %-21s\n", "splits",
              "avg_depth", "max_depth", "hint: avg/p100 probes",
              "mid:  avg/p100 probes", "rand: avg/p100 probes");

  for (const unsigned splits : {0u, 64u, 256u, 1024u, 4096u}) {
    const auto cluster_ptr = make_tree(splits, seed);
    auto& cluster = *cluster_ptr;
    const auto snap = cluster.snapshot();

    double avgs[3], maxs[3];
    const ClashClient::Options::Guess policies[] = {
        ClashClient::Options::Guess::kHint,
        ClashClient::Options::Guess::kMidpoint,
        ClashClient::Options::Guess::kRandom};
    for (int p = 0; p < 3; ++p) {
      ClashClient::Options opts;
      opts.guess = policies[p];
      opts.use_cache = false;
      ClashClient client(cluster.clash_config(),
                         cluster.client_env(ServerId{0}), cluster.hasher(),
                         opts, seed + 1);
      Rng rng(seed * 13 + 1);
      Summary probes;
      for (int i = 0; i < keys; ++i) {
        const Key k(rng.next() & 0xFFFFFF, 24);
        const auto out = client.resolve(k);
        if (!out.ok) {
          std::fprintf(stderr, "resolve failed!\n");
          return 1;
        }
        probes.add(double(out.probes));
      }
      avgs[p] = probes.mean();
      maxs[p] = probes.max;
    }
    std::printf("%-8u %-10.2f %-10.0f | %8.2f / %-10.0f | %8.2f / %-10.0f | "
                "%8.2f / %-10.0f\n",
                splits, snap.avg_depth, double(snap.max_depth), avgs[0],
                maxs[0], avgs[1], maxs[1], avgs[2], maxs[2]);
    char line[256];
    std::snprintf(line, sizeof(line),
                  "    %s{\"splits\": %u, \"avg_depth\": %.2f, "
                  "\"max_depth\": %u, \"hint_avg\": %.2f, \"mid_avg\": "
                  "%.2f, \"rand_avg\": %.2f}",
                  json_first ? "" : ",", splits, snap.avg_depth,
                  snap.max_depth, avgs[0], avgs[1], avgs[2]);
    json += line;
    json += "\n";
    json_first = false;
  }
  json += "  ]\n}\n";

  std::printf("\n# expectation: avg probes stays well under the O(log N) "
              "bound; the hint policy beats pure binary search because "
              "most keys sit near the typical depth\n");
  obs::maybe_embed_metrics(args, json, obs::Hub::global().registry);
  return write_json_artifact(args, json) ? 0 : 1;
}
