// Transport + sim-dispatch microbenchmarks behind BENCH_net.json.
//
// net_throughput: frames/sec through the full Connection send/receive
// path over loopback TCP (both endpoints on one epoll loop, frames
// sent in per-tick batches the way SWIM gossip and replication bursts
// are), at 64 B / 1 KiB / 64 KiB payloads. Also reports the small-
// frame coalescing ratio (frames per flush syscall).
// net_latency: single-frame ping-pong round-trip time.
// sim_dispatch: sim::EventQueue dispatch rate with closure captures
// big enough to defeat std::function's small-buffer optimisation (the
// shape real sim events have).
// repl_append_batching: wire encode+decode cost of one ReplAppend op
// per frame vs one frame per group per tick (the per-tick batching the
// replication engine now does) — the transport coalesces writes either
// way, so the saving is pure codec + envelope overhead.
// metrics_overhead: the observability self-gate — 64 B frames/sec with
// the full metrics registry attached (loop tick histogram + transport
// counters) must stay within 5% of the uninstrumented path, or the
// bench exits nonzero. Off/on runs are paired per round so ambient
// load cancels, the best ratio over up to 5 rounds decides, and the
// frame count is fixed (not --quick scaled) so CI and local runs gate
// the same work.
//
// Usage: micro_net [--quick] [--json=PATH]
#include <sys/epoll.h>

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "clash/messages.hpp"
#include "common/argparse.hpp"
#include "net/connection.hpp"
#include "net/event_loop.hpp"
#include "net/socket.hpp"
#include "obs/hub.hpp"
#include "sim/event_queue.hpp"
#include "wire/codec.hpp"

using namespace clash;
using namespace clash::net;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct ThroughputResult {
  std::size_t frame_bytes = 0;
  std::uint64_t frames = 0;
  double seconds = 0;
  std::uint64_t flush_syscalls = 0;  // writev/write calls on the sender
  [[nodiscard]] double frames_per_sec() const { return frames / seconds; }
  [[nodiscard]] double mb_per_sec() const {
    return double(frames) * double(frame_bytes) / seconds / 1e6;
  }
  [[nodiscard]] double coalesce_ratio() const {
    return flush_syscalls > 0 ? double(frames) / double(flush_syscalls) : 0;
  }
};

/// Pump `total` frames of `frame_bytes` through a loopback TCP pair on
/// one loop, `batch` frames queued per loop tick. When `hub` is set the
/// run is fully instrumented — tick histogram on the loop, clash_net_*
/// counters on both connections — exactly as a ClashNode wires them.
ThroughputResult run_throughput(std::size_t frame_bytes, std::uint64_t total,
                                std::size_t batch,
                                obs::Hub* hub = nullptr) {
  EventLoop loop;
  CLASH_ASSERT_ON_LOOP(loop);  // loop idle until run(): we hold affinity
  if (hub != nullptr) {
    loop.set_obs(hub->registry.histogram("clash_loop_tick_usec").raw(),
                 &hub->tracer, 0);
    // Flight recorder armed exactly as a ClashNode arms it: tick-budget
    // fence on the loop, fault/drop events on both connections. The
    // overhead gate below therefore prices the flight ring too.
    loop.set_stall_obs(&hub->flight,
                       hub->registry.counter(
                           "clash_stall_tick_overruns_total"),
                       /*budget_us=*/1'000'000);
  }
  auto listener = listen_tcp(Endpoint{"127.0.0.1", 0}).value();
  const auto port = bound_port(listener).value();

  std::uint64_t received = 0;
  std::shared_ptr<Connection> server;
  loop.add_fd(listener.get(), EPOLLIN, [&](std::uint32_t) {
    auto fd = accept_tcp(listener);
    if (!fd.ok()) return;
    server = Connection::adopt(
        loop, std::move(fd).value(),
        [&](std::span<const std::uint8_t>) {
          if (++received == total) loop.stop();
        },
        [] {});
    if (hub != nullptr) server->set_obs(hub, /*epoch_us=*/0);
  });

  auto client_fd = connect_tcp(Endpoint{"127.0.0.1", port}).value();
  auto client = Connection::adopt(loop, std::move(client_fd),
                                  [](std::span<const std::uint8_t>) {}, [] {});
  if (hub != nullptr) client->set_obs(hub, /*epoch_us=*/0);

  const std::vector<std::uint8_t> payload(frame_bytes, 0xAB);
  std::uint64_t sent = 0;
  // Re-arming sender task: queue one batch, yield to epoll, repeat.
  // Everything it references outlives loop.run(), which drains all
  // posted copies before returning.
  std::function<void()> send_batch = [&] {
    for (std::size_t i = 0; i < batch && sent < total; ++i, ++sent) {
      client->send_frame(payload);
    }
    if (sent < total) (void)loop.post(send_batch);
  };

  const auto t0 = Clock::now();
  (void)loop.post(send_batch);
  loop.run();
  ThroughputResult r;
  r.frame_bytes = frame_bytes;
  r.frames = total;
  r.seconds = seconds_since(t0);
  r.flush_syscalls = client->stats().flush_syscalls;
  return r;
}

/// Single-frame ping-pong: client sends, server echoes, client sends
/// the next on receipt. Returns average round-trip in microseconds.
double run_latency(std::uint64_t round_trips) {
  EventLoop loop;
  CLASH_ASSERT_ON_LOOP(loop);  // loop idle until run(): we hold affinity
  auto listener = listen_tcp(Endpoint{"127.0.0.1", 0}).value();
  const auto port = bound_port(listener).value();

  std::shared_ptr<Connection> server;
  loop.add_fd(listener.get(), EPOLLIN, [&](std::uint32_t) {
    auto fd = accept_tcp(listener);
    if (!fd.ok()) return;
    server = Connection::adopt(
        loop, std::move(fd).value(),
        [&](std::span<const std::uint8_t> frame) { server->send_frame(frame); },
        [] {});
  });

  const std::vector<std::uint8_t> ping(64, 0x1);
  std::uint64_t completed = 0;
  std::shared_ptr<Connection> client;
  auto client_fd = connect_tcp(Endpoint{"127.0.0.1", port}).value();
  client = Connection::adopt(
      loop, std::move(client_fd),
      [&](std::span<const std::uint8_t>) {
        if (++completed == round_trips) {
          loop.stop();
          return;
        }
        client->send_frame(ping);
      },
      [] {});

  const auto t0 = Clock::now();
  (void)loop.post([&] { client->send_frame(ping); });
  loop.run();
  return seconds_since(t0) * 1e6 / double(round_trips);
}

/// EventQueue dispatch rate. Each event's closure captures 64 bytes so
/// a copying dispatch pays an allocation per event, as real sim events
/// (which capture ids, keys, shared state) do.
double run_sim_dispatch(std::uint64_t events) {
  sim::EventQueue q;
  q.reserve(std::size_t(events));
  std::uint64_t sum = 0;
  std::array<std::uint64_t, 8> fat{};
  for (std::uint64_t i = 0; i < events; ++i) {
    fat[0] = i;
    q.at(SimTime(std::int64_t(i)), [&sum, fat] { sum += fat[0]; });
  }
  const auto t0 = Clock::now();
  q.run_until(SimTime(std::int64_t(events)));
  const double secs = seconds_since(t0);
  if (sum == 0) std::fprintf(stderr, "unexpected zero checksum\n");
  return double(events) / secs;
}

/// Encode + decode `total_ops` ReplAppend log ops, `per_frame` ops per
/// frame, through the full wire path (envelope + codec both ways).
/// Returns ops/sec.
double run_append_codec(std::uint64_t total_ops, std::size_t per_frame) {
  const KeyGroup group = KeyGroup::root(24);
  std::uint64_t checksum = 0;
  const auto t0 = Clock::now();
  std::uint64_t done = 0;
  std::uint64_t seq = 0;
  while (done < total_ops) {
    const std::size_t n =
        std::size_t(std::min<std::uint64_t>(per_frame, total_ops - done));
    ReplAppend msg;
    msg.group = group;
    msg.owner = ServerId{1};
    msg.epoch = 1;
    msg.base_seq = seq;
    msg.entries.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      msg.entries.push_back(repl::LogOp::put_stream(
          StreamInfo{ClientId{seq + i}, Key(0x123456, 24), 2.5}));
    }
    seq += n;
    auto w = wire::begin_frame(
        wire::Envelope{wire::FrameKind::kOneway, 0, ServerId{1}});
    wire::encode_message(w, Message(std::move(msg)));
    const auto frame = wire::finish_frame(std::move(w));
    const auto decoded = wire::decode_frame(
        std::span<const std::uint8_t>(frame).subspan(4));
    const auto out = wire::decode_message(decoded.value().payload);
    checksum += std::get<ReplAppend>(out.value()).entries.size();
    done += n;
  }
  const double secs = seconds_since(t0);
  if (checksum != total_ops) std::fprintf(stderr, "checksum mismatch\n");
  return double(total_ops) / secs;
}

}  // namespace

int main(int argc, char** argv) {
  const ArgParser args(argc, argv);
  const bool quick = args.get_bool("quick", false);

  const std::uint64_t small_frames = quick ? 20'000 : 400'000;
  const std::uint64_t mid_frames = quick ? 10'000 : 200'000;
  const std::uint64_t big_frames = quick ? 1'000 : 20'000;
  const std::uint64_t rtts = quick ? 2'000 : 20'000;
  const std::uint64_t sim_events = quick ? 100'000 : 1'000'000;

  const auto t64 = run_throughput(64, small_frames, 64);
  const auto t1k = run_throughput(1024, mid_frames, 32);
  const auto t64k = run_throughput(64 * 1024, big_frames, 8);
  const double rtt_us = run_latency(rtts);
  const double dispatch = run_sim_dispatch(sim_events);
  const std::uint64_t append_ops = quick ? 200'000 : 2'000'000;
  const std::size_t append_batch = 16;
  const double unbatched_ops = run_append_codec(append_ops, 1);
  const double batched_ops = run_append_codec(append_ops, append_batch);
  std::printf("# repl_append codec: %.0f ops/s unbatched, %.0f ops/s at "
              "batch %zu (%.2fx)\n",
              unbatched_ops, batched_ops, append_batch,
              batched_ops / unbatched_ops);

  // --- Observability overhead self-gate --------------------------------
  const std::uint64_t gate_frames = 300'000;
  obs::Hub hub;
  double off_best = 0;
  double on_best = 0;
  double gate_ratio = 0;
  int gate_rounds = 0;
  // Each round pairs an uninstrumented run with an instrumented one
  // back-to-back, so ambient load skews both sides alike; the gate
  // takes the best ratio seen (per-round or best-vs-best) — one clean
  // round bounds the true overhead, while a real >5% cost drags every
  // round down. Extra rounds run only while the verdict is marginal.
  for (int round = 0; round < 5; ++round) {
    const double off = run_throughput(64, gate_frames, 64).frames_per_sec();
    const double on =
        run_throughput(64, gate_frames, 64, &hub).frames_per_sec();
    ++gate_rounds;
    off_best = std::max(off_best, off);
    on_best = std::max(on_best, on);
    gate_ratio =
        std::max({gate_ratio, on / off, on_best / off_best});
    if (round >= 1 && gate_ratio >= 0.97) break;
  }
  // The instrumented runs must actually have recorded — a gate that
  // silently measured two uninstrumented paths would always pass.
  const std::uint64_t gate_sent =
      hub.registry.counter_value("clash_net_frames_sent_total");
  const auto gate_ticks =
      hub.registry.histogram_snapshot("clash_loop_tick_usec");
  if (gate_sent < gate_frames * std::uint64_t(gate_rounds) ||
      gate_ticks.count == 0) {
    std::fprintf(stderr,
                 "metrics gate broken: instrumented runs recorded "
                 "%llu frames, %llu ticks\n",
                 (unsigned long long)gate_sent,
                 (unsigned long long)gate_ticks.count);
    return 1;
  }
  const double overhead_ratio = gate_ratio;
  const bool gate_ok = overhead_ratio >= 0.95;
  std::printf("# metrics overhead: %.0f frames/s off, %.0f on "
              "(ratio %.3f) -> %s\n",
              off_best, on_best, overhead_ratio,
              gate_ok ? "PASS" : "FAIL");

  std::string out = "{\n  \"bench\": \"micro_net\",\n";
  out += "  \"quick\": " + std::string(quick ? "true" : "false") + ",\n";
  out += "  \"net_throughput\": [\n";
  const ThroughputResult* results[] = {&t64, &t1k, &t64k};
  for (std::size_t i = 0; i < 3; ++i) {
    const auto& r = *results[i];
    char line[256];
    std::snprintf(line, sizeof(line),
                  "    {\"frame_bytes\": %zu, \"frames\": %llu, "
                  "\"frames_per_sec\": %.0f, \"mb_per_sec\": %.1f, "
                  "\"coalesce_ratio\": %.2f}%s\n",
                  r.frame_bytes, (unsigned long long)r.frames,
                  r.frames_per_sec(), r.mb_per_sec(), r.coalesce_ratio(),
                  i + 1 < 3 ? "," : "");
    out += line;
  }
  out += "  ],\n";
  char batching[256];
  std::snprintf(batching, sizeof(batching),
                "  \"repl_append_codec\": {\"ops\": %llu, \"batch\": %zu, "
                "\"unbatched_ops_per_sec\": %.0f, "
                "\"batched_ops_per_sec\": %.0f, \"speedup\": %.2f},\n",
                (unsigned long long)append_ops, append_batch, unbatched_ops,
                batched_ops, batched_ops / unbatched_ops);
  out += batching;
  char gate_json[256];
  std::snprintf(gate_json, sizeof(gate_json),
                "  \"metrics_overhead\": {\"frames\": %llu, "
                "\"off_frames_per_sec\": %.0f, \"on_frames_per_sec\": %.0f, "
                "\"ratio\": %.4f, \"pass\": %s},\n",
                (unsigned long long)gate_frames, off_best, on_best,
                overhead_ratio, gate_ok ? "true" : "false");
  out += gate_json;
  char tail[160];
  std::snprintf(tail, sizeof(tail),
                "  \"net_latency_rtt_us\": %.2f,\n"
                "  \"sim_dispatch_events_per_sec\": %.0f\n}\n",
                rtt_us, dispatch);
  out += tail;

  std::fputs(out.c_str(), stdout);
  if (!write_json_artifact(args, out)) return 1;
  return gate_ok ? 0 : 1;
}
