// Range-query extension (Section 7): "For range queries, the CLASH
// overhead vis-a-vis DHT will decrease, since CLASH will cluster ranges
// of objects on a common server and thus incur lower query replication
// overhead." This bench loads a cluster with workload C, lets the tree
// adapt, then measures — for range scopes of decreasing size — how many
// segments/servers a range subscription touches under CLASH vs
// fine-grained basic DHT.
//
// Usage: abl_range [--servers=200] [--sources=10000] [--seed=42]
//        [--json=PATH]
#include <cstdio>
#include <string>
#include <set>

#include "clash/client.hpp"
#include "common/argparse.hpp"
#include "obs/expose.hpp"
#include "obs/hub.hpp"
#include "common/rng.hpp"
#include "sim/cluster.hpp"
#include "sim/workload.hpp"

using namespace clash;
using namespace clash::sim;

int main(int argc, char** argv) {
  const ArgParser args(argc, argv);
  const auto n_servers = std::size_t(args.get_int("servers", 200));
  const auto n_sources = std::size_t(args.get_int("sources", 10000));
  const auto seed = std::uint64_t(args.get_int("seed", 42));

  SimCluster::Config cfg;
  cfg.num_servers = n_servers;
  cfg.seed = seed;
  cfg.virtual_servers = 8;
  cfg.clash.key_width = 24;
  cfg.clash.initial_depth = 6;
  // Capacity such that workload C forces a deep hot subtree.
  cfg.clash.capacity = 2400.0 * double(n_sources) / 100000.0 *
                       (1000.0 / double(n_servers));
  SimCluster cluster(cfg);
  cluster.bootstrap();

  // Load with workload C and adapt.
  const auto spec = workload_c();
  KeyGenerator gen(spec, 24);
  Rng rng(seed);
  ClashClient loader(cluster.clash_config(), cluster.client_env(ServerId{0}),
                     cluster.hasher());
  for (std::size_t i = 0; i < n_sources; ++i) {
    AcceptObject obj;
    obj.key = gen.sample(rng);
    obj.kind = ObjectKind::kData;
    obj.source = ClientId{i};
    obj.stream_rate = spec.source_rate;
    if (!loader.insert(obj).ok) {
      std::fprintf(stderr, "load failed\n");
      return 1;
    }
  }
  for (int round = 1; round <= 16; ++round) {
    cluster.set_now(SimTime::from_minutes(5 * round));
    cluster.run_all_load_checks();
  }
  const auto snap = cluster.snapshot();
  std::printf("# cluster adapted under workload C: %zu groups, depths "
              "%u..%u, max load %.0f%%\n",
              snap.active_groups, snap.min_depth, snap.max_depth,
              snap.max_load_frac * 100);

  std::printf("\n%-22s %10s %10s %12s | %12s %12s\n", "range scope",
              "segments", "servers", "probes", "DHT12_srvs", "DHT24_srvs");

  ClashClient client(cluster.clash_config(), cluster.client_env(ServerId{0}),
                     cluster.hasher());
  const dht::KeyHasher& hasher = cluster.hasher();

  // Scopes centred on the hot region (where the tree is deepest) from
  // wide to narrow, plus one cold scope for contrast.
  const Key hot = gen.sample(rng);
  struct Scope {
    const char* name;
    KeyGroup group;
  };
  const Scope scopes[] = {
      {"hot /4 (1M keys)", KeyGroup::of(hot, 4)},
      {"hot /6 (256k keys)", KeyGroup::of(hot, 6)},
      {"hot /8 (64k keys)", KeyGroup::of(hot, 8)},
      {"hot /10 (16k keys)", KeyGroup::of(hot, 10)},
      {"cold /6 (256k keys)", KeyGroup::of(Key(0, 24), 6)},
  };

  std::string json = "{\n  \"bench\": \"abl_range\",\n  \"runs\": [\n";
  bool json_first = true;
  for (const auto& scope : scopes) {
    const auto out = client.resolve_scope(scope.group);
    if (!out.ok) {
      std::fprintf(stderr, "range resolve failed\n");
      return 1;
    }
    // Basic DHT server contacts for the same subscription: sample keys
    // in the scope and count distinct owners of their fixed-depth
    // groups.
    std::set<std::uint64_t> dht12, dht24;
    Rng sampler(seed + 1);
    const unsigned free_bits = 24 - scope.group.depth();
    for (int i = 0; i < 4096; ++i) {
      const std::uint64_t suffix =
          free_bits >= 64 ? sampler.next()
                          : (sampler.next() &
                             ((std::uint64_t{1} << free_bits) - 1));
      const Key k(scope.group.virtual_key().value() | suffix, 24);
      dht12.insert(
          cluster.ring().map(hasher.hash_key(shape(k, 12))).value);
      dht24.insert(cluster.ring().map(hasher.hash_key(k)).value);
    }
    std::printf("%-22s %10zu %10zu %12u | %12zu %12zu\n", scope.name,
                out.segments.size(), out.distinct_servers(), out.probes,
                dht12.size(), dht24.size());
    char line[256];
    std::snprintf(line, sizeof(line),
                  "    %s{\"scope\": \"%s\", \"segments\": %zu, "
                  "\"servers\": %zu, \"probes\": %u, \"dht12_srvs\": %zu, "
                  "\"dht24_srvs\": %zu}",
                  json_first ? "" : ",", scope.name, out.segments.size(),
                  out.distinct_servers(), out.probes, dht12.size(),
                  dht24.size());
    json += line;
    json += "\n";
    json_first = false;
  }
  json += "  ]\n}\n";

  std::printf(
      "\n# expectation: CLASH touches a handful of servers per range "
      "(only hot subtrees fan out); fixed-depth hashing scatters the "
      "same range across most of the pool — the paper's query "
      "replication argument\n");
  obs::maybe_embed_metrics(args, json, obs::Hub::global().registry);
  return write_json_artifact(args, json) ? 0 : 1;
}
